"""Tests for the process shard workers (``repro.store.workers``).

The smoke test doubles as the CI tier-1 gate for the worker machinery:
it exercises the full ``VPStore`` contract through real worker OS
processes with a short per-op timeout, so a wedged worker surfaces as a
clean ``StorageError`` within seconds instead of hanging the suite.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.errors import StorageError, ValidationError
from repro.geo.geometry import Point, Rect
from repro.store import ProcessShardedStore, RetentionPolicy, apply_retention
from tests.store.conftest import fingerprints, make_vp

#: every worker round-trip in this file must answer well within this
OP_TIMEOUT_S = 30.0


def make_fleet(tmp_path=None, n=2, **kwargs):
    kwargs.setdefault("op_timeout_s", OP_TIMEOUT_S)
    if tmp_path is None:
        return ProcessShardedStore.memory(n_workers=n, shard_cells=n, **kwargs)
    return ProcessShardedStore.sqlite(
        [str(tmp_path / f"worker-{i}.sqlite") for i in range(n)],
        shard_cells=n,
        **kwargs,
    )


class TestContractSmoke:
    def test_full_contract_through_worker_processes(self):
        store = make_fleet()
        try:
            assert store.worker_pids() and all(
                pid and pid != os.getpid() for pid in store.worker_pids()
            )
            vps = [
                make_vp(seed=i + 1, minute=i % 2, x0=700.0 * i, y0=350.0 * (i % 3))
                for i in range(10)
            ]
            store.insert(vps[0])
            assert store.insert_many(vps) == 9
            with pytest.raises(ValidationError):
                store.insert(make_vp(seed=1, minute=0))
            assert len(store) == 10
            assert store.minutes() == [0, 1]
            assert store.count_by_minute(0) == 5
            expected0 = [vp for vp in vps if vp.minute == 0]
            assert fingerprints(store.by_minute(0)) == fingerprints(expected0)
            assert vps[3].vp_id in store
            assert fingerprints([store.get(vps[3].vp_id)]) == fingerprints([vps[3]])
            assert store.get(b"\x00" * 16) is None
            area = Rect(-10.0, -10.0, 1500.0, 1500.0)
            expected_area = [
                vp
                for vp in expected0
                if any(
                    -10.0 <= p.x <= 1500.0 and -10.0 <= p.y <= 1500.0
                    for p in vp.trajectory.points
                )
            ]
            assert fingerprints(store.by_minute_in_area(0, area)) == fingerprints(
                expected_area
            )
            trusted = make_vp(seed=90, minute=0, x0=10.0)
            store.insert_trusted(trusted)
            assert fingerprints(store.trusted_by_minute(0)) == fingerprints([trusted])
            assert fingerprints(
                store.nearest_trusted(0, Point(0.0, 0.0), k=1)
            ) == fingerprints([trusted])
            assert sorted(store.iter_id_minutes()) == sorted(
                (vp.vp_id, vp.minute) for vp in vps + [trusted]
            )
            stats = store.stats()
            assert stats.backend == "procs" and stats.vps == 11 and stats.trusted == 1
            assert store.shards[0].stats().detail["worker_pid"] == store.worker_pids()[0]
            assert store.evict_before(1) == 6
            assert store.minutes() == [1]
            assert store.compact()["shards"]
        finally:
            store.close()
        # close terminated the fleet: the workers are gone
        deadline = time.monotonic() + OP_TIMEOUT_S
        for shard in store.shards:
            while shard._proc.is_alive() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not shard._proc.is_alive()

    def test_duplicate_id_across_minutes_rejected(self):
        # same R value at two different minutes routes to two different
        # workers; the routing tier must still reject the duplicate
        store = make_fleet()
        try:
            gen_a = make_vp(seed=5, minute=0)
            gen_b = make_vp(seed=5, minute=1)
            assert gen_a.vp_id == gen_b.vp_id
            store.insert(gen_a)
            with pytest.raises(ValidationError):
                store.insert(gen_b)
            assert store.insert_many([gen_b]) == 0
        finally:
            store.close()

    def test_sqlite_fleet_persists_across_restart(self, tmp_path):
        vps = [make_vp(seed=i + 1, minute=0, x0=900.0 * i) for i in range(6)]
        store = make_fleet(tmp_path)
        store.insert_many(vps)
        store.close()

        reopened = make_fleet(tmp_path)
        try:
            assert len(reopened) == 6
            with pytest.raises(ValidationError):
                reopened.insert(make_vp(seed=1, minute=0))
            assert {f for f in fingerprints(reopened.by_minute(0))} == {
                f for f in fingerprints(vps)
            }
        finally:
            reopened.close()


class TestFailureModel:
    def test_dead_worker_raises_storage_error_and_close_returns(self):
        store = make_fleet()
        victim = store.shards[0]
        os.kill(victim.worker_pid, signal.SIGKILL)
        victim._proc.join(timeout=OP_TIMEOUT_S)
        with pytest.raises(StorageError):
            victim.insert_many([make_vp(seed=1, minute=0)])
        assert not victim.alive()
        # the fleet still shuts down cleanly around the corpse
        store.close()

    def test_broken_worker_poisons_subsequent_ops(self):
        store = make_fleet()
        victim = store.shards[1]
        os.kill(victim.worker_pid, signal.SIGKILL)
        victim._proc.join(timeout=OP_TIMEOUT_S)
        with pytest.raises(StorageError):
            len(victim)
        with pytest.raises(StorageError):
            len(victim)  # still poisoned, still loud, never hangs
        store.close()

    def test_worker_construction_failure_surfaces(self, tmp_path):
        bad = str(tmp_path / "no-such-dir" / "worker.sqlite")
        with pytest.raises(StorageError):
            ProcessShardedStore.sqlite([bad], op_timeout_s=OP_TIMEOUT_S)


class TestRetentionOnWorkers:
    def test_pin_trusted_survives_eviction(self):
        store = make_fleet()
        try:
            anon = [make_vp(seed=i + 1, minute=0, x0=600.0 * i) for i in range(4)]
            seed_vp = make_vp(seed=50, minute=0, x0=5.0)
            store.insert_many(anon)
            store.insert_trusted(seed_vp)
            policy = RetentionPolicy(window_minutes=1, pin_trusted=True)
            report = apply_retention(store, policy, newest_minute=5)
            assert report.evicted == 4
            assert fingerprints(store.by_minute(0)) == fingerprints([seed_vp])
            assert store.get(seed_vp.vp_id) is not None
            # the pinned id stays claimed; evicted anonymous ids free up
            with pytest.raises(ValidationError):
                store.insert(make_vp(seed=50, minute=0, x0=5.0))
            store.insert(make_vp(seed=1, minute=0, x0=0.0))
        finally:
            store.close()

    def test_group_commit_rows_flush_on_eviction(self, tmp_path):
        store = make_fleet(tmp_path, group_commit_rows=10_000)
        try:
            store.insert_many(
                [make_vp(seed=i + 1, minute=i % 3, x0=400.0 * i) for i in range(9)]
            )
            # rows may still sit in worker pending buffers; eviction must
            # count them all the same
            assert store.evict_before(2) == 6
            assert len(store) == 3
        finally:
            store.close()
