"""Tests for the read-path serving tier: QuerySpec, tiles, TileCache.

The concurrency-sensitive part is the tile cache's write-bracket
discipline: a cached minute may only be served when no ingest bracket
overlapped its build, and eviction invalidates by epoch.  These tests
exercise the token protocol directly, then drive whole backends through
racing ingest/evict/count traffic and assert the cache never serves a
count the store contradicts.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import ValidationError
from repro.geo.geometry import Point, Rect
from repro.obs.metrics import MetricsRegistry, counter_value
from repro.store import MemoryStore, SQLiteStore, make_store
from repro.store.serving import (
    MinuteTiles,
    QuerySpec,
    TileCache,
    build_minute_tiles,
    tile_cells_of_box,
)
from tests.store.conftest import make_vp


class TestQuerySpec:
    def test_defaults(self):
        spec = QuerySpec(minute=3)
        assert spec.area is None and not spec.trusted_only
        assert not spec.count and not spec.encoded

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"minute": -1},
            {"minute": 0, "k": 0},
            {"minute": 0, "count": True, "encoded": True},
            {"minute": 0, "nearest": Point(0, 0), "count": True},
            {"minute": 0, "nearest": Point(0, 0), "encoded": True},
        ],
    )
    def test_invalid_axes_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            QuerySpec(**kwargs)


class TestMinuteTiles:
    def test_cells_of_box_inclusive(self):
        cells = set(tile_cells_of_box(-10.0, 0.0, 260.0, 0.0, 250.0))
        assert cells == {(-1, 0), (0, 0), (1, 0)}

    def test_overlap_has_no_false_negatives(self):
        tiles = build_minute_tiles([(1, 0.0, 0.0, 100.0, 100.0)], cell_m=250.0)
        assert tiles.n_vps == 1 and tiles.n_trusted == 1
        assert tiles.overlaps(Rect(50, 50, 60, 60))
        assert not tiles.overlaps(Rect(5000, 5000, 6000, 6000))

    def test_merge_adds_totals_and_cells(self):
        a = build_minute_tiles([(0, 0.0, 0.0, 10.0, 10.0)], cell_m=250.0)
        b = build_minute_tiles([(1, 0.0, 0.0, 10.0, 10.0)], cell_m=250.0)
        a.merge(b)
        assert (a.n_vps, a.n_trusted) == (2, 1)
        assert a.cells[(0, 0)] == [2, 1]

    def test_dict_round_trip(self):
        tiles = build_minute_tiles(
            [(1, -10.0, -10.0, 5.0, 5.0), (0, 300.0, 0.0, 310.0, 10.0)], cell_m=250.0
        )
        clone = MinuteTiles.from_dict(tiles.to_dict())
        assert clone.cells == tiles.cells
        assert (clone.n_vps, clone.n_trusted) == (tiles.n_vps, tiles.n_trusted)


class TestTileCacheProtocol:
    def test_build_store_read(self):
        cache = TileCache(cell_m=250.0)
        token = cache.begin(0)
        tiles = build_minute_tiles([(1, 0.0, 0.0, 10.0, 10.0)], cell_m=250.0)
        assert cache.store(0, tiles, token)
        assert cache.counts(0) == (1, 1)
        assert cache.overlaps(0, Rect(0, 0, 5, 5)) is True

    def test_store_rejected_when_bracket_overlaps_build(self):
        cache = TileCache(cell_m=250.0)
        token = cache.begin(0)
        with cache.write((0,)) as tile_writes:
            tile_writes.add(0, 0, 0.0, 0.0, 1.0, 1.0)
        # the bracket ran between begin and store: the scan may or may
        # not have seen the row, so the build must be discarded
        assert not cache.store(0, MinuteTiles(cell_m=250.0), token)
        assert cache.counts(0) is None

    def test_store_rejected_while_bracket_in_flight(self):
        cache = TileCache(cell_m=250.0)
        with cache.write((0,)):
            token = cache.begin(0)
            assert not cache.store(0, MinuteTiles(cell_m=250.0), token)

    def test_bracket_deltas_keep_cached_entry_exact(self):
        cache = TileCache(cell_m=250.0)
        token = cache.begin(0)
        assert cache.store(0, MinuteTiles(cell_m=250.0), token)
        with cache.write((0,)) as tile_writes:
            tile_writes.add(0, 1, 0.0, 0.0, 10.0, 10.0)
        assert cache.counts(0) == (1, 1)

    def test_mark_dirty_drops_the_minute(self):
        cache = TileCache(cell_m=250.0)
        token = cache.begin(0)
        assert cache.store(0, MinuteTiles(cell_m=250.0), token)
        with cache.write((0,)) as tile_writes:
            tile_writes.mark_dirty(0)
        assert cache.counts(0) is None

    def test_invalidate_below_bumps_epoch_and_drops(self):
        cache = TileCache(cell_m=250.0)
        for minute in (0, 5):
            token = cache.begin(minute)
            assert cache.store(minute, MinuteTiles(cell_m=250.0), token)
        pending = cache.begin(7)
        cache.invalidate_below(3)
        assert cache.counts(0) is None  # evicted minute dropped
        assert cache.counts(5) == (0, 0)  # surviving minute kept
        # a build begun before the eviction may have scanned doomed rows
        assert not cache.store(7, MinuteTiles(cell_m=250.0), pending)

    def test_lru_bound(self):
        cache = TileCache(max_minutes=2, cell_m=250.0)
        for minute in range(3):
            token = cache.begin(minute)
            assert cache.store(minute, MinuteTiles(cell_m=250.0), token)
        assert cache.counts(0) is None
        assert cache.info()["minutes"] == 2

    def test_hit_miss_counters_reach_registry(self):
        registry = MetricsRegistry()
        cache = TileCache(cell_m=250.0, metrics=registry)
        cache.counts(0)  # miss
        token = cache.begin(0)
        cache.store(0, MinuteTiles(cell_m=250.0), token)
        cache.counts(0)  # hit
        snap = registry.snapshot()
        assert counter_value(snap, "store.query.tile_miss") == 1
        assert counter_value(snap, "store.query.tile_hit") == 1


@pytest.mark.parametrize("kind", ["memory", "sqlite", "sharded", "procs"])
class TestBackendTiles:
    def _store(self, kind):
        return make_store(kind, n_shards=2, ingest_workers=2)

    def test_counts_served_from_tiles_after_first_build(self, kind):
        store = self._store(kind)
        try:
            store.insert_many([make_vp(seed=i, minute=1) for i in range(4)])
            store.insert_trusted(make_vp(seed=99, minute=1))
            spec = QuerySpec(minute=1, count=True)
            assert store.query(spec).n == 5
            assert store.query(spec).n == 5
            assert store.query(QuerySpec(minute=1, trusted_only=True, count=True)).n == 1
            info = store.stats().detail["tile_cache"]
            assert info["hits"] >= 1
        finally:
            store.close()

    def test_area_miss_short_circuits(self, kind):
        store = self._store(kind)
        try:
            store.insert_many([make_vp(seed=i, minute=0, x0=0.0) for i in range(3)])
            far = Rect(50_000.0, 50_000.0, 51_000.0, 51_000.0)
            store.query(QuerySpec(minute=0, count=True))  # prime the tiles
            assert store.query(QuerySpec(minute=0, area=far)).vps == []
            frame = store.query_encoded(QuerySpec(minute=0, area=far, encoded=True))
            assert frame[1:5] == (0).to_bytes(4, "big")
        finally:
            store.close()

    def test_eviction_invalidates_tiles(self, kind):
        store = self._store(kind)
        try:
            store.insert_many([make_vp(seed=i, minute=0) for i in range(3)])
            store.insert_many([make_vp(seed=10 + i, minute=5) for i in range(2)])
            assert store.query(QuerySpec(minute=0, count=True)).n == 3
            store.evict_before(3)
            assert store.query(QuerySpec(minute=0, count=True)).n == 0
            assert store.query(QuerySpec(minute=5, count=True)).n == 2
        finally:
            store.close()

    def test_coverage_tiles_totals_match_population(self, kind):
        store = self._store(kind)
        try:
            store.insert_many(
                [make_vp(seed=i, minute=2, x0=400.0 * i) for i in range(4)]
            )
            store.insert_trusted(make_vp(seed=50, minute=2))
            tiles = store.coverage_tiles(2)
            assert (tiles.n_vps, tiles.n_trusted) == (5, 1)
            assert sum(c[0] for c in tiles.cells.values()) >= 5
        finally:
            store.close()


@pytest.mark.parametrize("store_cls", [MemoryStore, SQLiteStore])
def test_tile_counts_exact_under_concurrent_ingest_and_evict(store_cls):
    """Racing writers, a count reader and an evictor never desync tiles.

    The reader polls tile-backed counts while writers land rows and an
    evictor advances the watermark; afterwards every minute's cached
    count must equal the rows actually present — the write brackets and
    the eviction epoch must have discarded every stale build.
    """
    store = store_cls()
    errors: list[Exception] = []
    stop = threading.Event()

    def writer(base: int) -> None:
        try:
            for i in range(40):
                store.insert(make_vp(seed=base + i, minute=(base + i) % 4))
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    def reader() -> None:
        try:
            while not stop.is_set():
                for minute in range(4):
                    n = store.query(QuerySpec(minute=minute, count=True)).n
                    assert n >= 0
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    def evictor() -> None:
        try:
            for cutoff in (1, 2):
                store.evict_before(cutoff)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(1000 * t,)) for t in range(3)]
    threads.append(threading.Thread(target=reader))
    threads.append(threading.Thread(target=evictor))
    for t in threads[:3] + threads[4:]:
        t.start()
    threads[3].start()
    for t in threads[:3] + threads[4:]:
        t.join()
    stop.set()
    threads[3].join()
    assert not errors
    # quiesced: tile-backed counts must match the rows that survived
    for minute in range(4):
        expected = len(store.by_minute(minute))
        assert store.query(QuerySpec(minute=minute, count=True)).n == expected
        tiles = store.coverage_tiles(minute)
        assert tiles.n_vps == expected
    store.close()
