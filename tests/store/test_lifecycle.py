"""Tests for the store lifecycle subsystem (retention + eviction).

Covers the policy object itself, ``apply_retention`` reports, the
composite-routing variants of :class:`ShardedStore`, and — as a
hypothesis property — that for *any* interleaving of inserts and
evictions, every backend answers area queries over the retained window
with exactly the non-evicted matching VPs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.geo.geometry import Rect
from repro.store import (
    MemoryStore,
    ProcessShardedStore,
    RetentionPolicy,
    ShardedStore,
    SQLiteStore,
    apply_retention,
)
from tests.store.conftest import fingerprints, make_vp


class TestRetentionPolicy:
    def test_cutoff_and_retains(self):
        policy = RetentionPolicy(window_minutes=3, grace=1)
        assert policy.retained_minutes == 4
        assert policy.cutoff(newest_minute=10) == 7
        assert policy.retains(7, newest_minute=10)
        assert not policy.retains(6, newest_minute=10)

    def test_validation(self):
        with pytest.raises(ValidationError):
            RetentionPolicy(window_minutes=0)
        with pytest.raises(ValidationError):
            RetentionPolicy(window_minutes=1, grace=-1)
        with pytest.raises(ValidationError):
            RetentionPolicy(window_minutes=1, max_vps_per_minute=-1)
        with pytest.raises(ValidationError):
            RetentionPolicy(window_minutes=1, compact_every=-1)


class TestApplyRetention:
    def test_evicts_below_cutoff_and_reports(self):
        store = MemoryStore()
        for minute in range(5):
            store.insert(make_vp(seed=minute + 1, minute=minute))
        report = apply_retention(
            store, RetentionPolicy(window_minutes=2), newest_minute=4
        )
        assert report.cutoff == 3
        assert report.evicted == 3
        assert store.minutes() == [3, 4]

    def test_overload_flagged_not_discarded(self):
        # the per-minute cap is advisory: VPs are potential evidence, so
        # a concentration flood is reported, never silently dropped
        store = MemoryStore()
        for i in range(4):
            store.insert(make_vp(seed=i + 1, minute=0, x0=40.0 * i))
        policy = RetentionPolicy(window_minutes=5, max_vps_per_minute=3)
        report = apply_retention(store, policy, newest_minute=0)
        assert report.overloaded == {0: 4}
        assert len(store) == 4

    def test_compaction_gauges_returned(self):
        store = SQLiteStore()
        store.insert(make_vp(seed=1, minute=0))
        store.insert(make_vp(seed=2, minute=9))
        report = apply_retention(
            store, RetentionPolicy(window_minutes=1), newest_minute=9, compact=True
        )
        assert report.evicted == 1
        assert "db_bytes" in report.compaction
        store.close()

    def test_compaction_drains_the_freelist(self, tmp_path):
        # PRAGMA incremental_vacuum is not stepped to completion by one
        # execute(): compact() must loop until the freelist is empty,
        # not free a single page and claim success
        store = SQLiteStore(str(tmp_path / "vacuum.sqlite"))
        store.insert_many(
            [make_vp(seed=i + 1, minute=i % 10, x0=40.0 * i) for i in range(1500)]
        )
        store.evict_before(9)
        conn = store._conn
        freed = conn.execute("PRAGMA freelist_count").fetchone()[0]
        assert freed > 10  # eviction left real pages to reclaim
        report = store.compact(min_reclaim_bytes=1)
        assert report["vacuumed"]
        assert conn.execute("PRAGMA freelist_count").fetchone()[0] == 0
        store.close()

    def test_count_by_minute_matches_population(self):
        for store in (MemoryStore(), SQLiteStore(), ShardedStore.memory(3),
                      ShardedStore.memory(4, shard_cells=4)):
            for i in range(5):
                store.insert(make_vp(seed=i + 1, minute=i % 2, x0=500.0 * i))
            assert store.count_by_minute(0) == len(store.by_minute(0)) == 3
            assert store.count_by_minute(1) == 2
            assert store.count_by_minute(7) == 0
            store.close()


class TestEvictionSemantics:
    @pytest.mark.parametrize("kind", ["memory", "sqlite", "sharded", "sharded-cells"])
    def test_evicted_vps_fully_gone(self, kind):
        store = {
            "memory": MemoryStore,
            "sqlite": SQLiteStore,
            "sharded": lambda: ShardedStore.memory(n_shards=3),
            "sharded-cells": lambda: ShardedStore.memory(n_shards=4, shard_cells=4),
        }[kind]()
        vps = [
            make_vp(seed=10 * m + i + 1, minute=m, x0=300.0 * i)
            for m in range(4)
            for i in range(3)
        ]
        store.insert_many(vps)
        assert store.evict_before(2) == 6
        assert store.minutes() == [2, 3]
        for vp in vps:
            if vp.minute < 2:
                assert vp.vp_id not in store
                assert store.get(vp.vp_id) is None
            else:
                assert vp.vp_id in store
        # evicted ids are free again: the same R value can be reused
        # (the fleet-wide duplicate check must not remember ghosts)
        readd = make_vp(seed=1, minute=0)
        store.insert(readd)
        assert fingerprints(store.by_minute(0)) == fingerprints([readd])
        assert store.evict_before(10) == 7
        assert len(store) == 0
        store.close()

    def test_sqlite_decode_cache_purged_on_eviction(self):
        store = SQLiteStore(decode_cache=16)
        vp = make_vp(seed=1, minute=0)
        store.insert(vp)
        assert store.get(vp.vp_id) is not None  # now cached
        store.evict_before(1)
        # a cached id must never outlive its row
        assert store.get(vp.vp_id) is None
        assert vp.vp_id not in store
        store.close()

    def test_sqlite_stale_reader_does_not_repopulate_cache(self):
        # a reader that selected rows before an eviction must not put
        # the decoded (now-deleted) VP back into the cache afterwards
        store = SQLiteStore(decode_cache=16)
        vp = make_vp(seed=1, minute=0)
        store.insert(vp)
        stale_epoch = store._cache_epoch()
        row = store._conn.execute(
            "SELECT vp_id, body, trusted FROM vps WHERE vp_id = ?", (vp.vp_id,)
        ).fetchone()
        store.evict_before(1)  # bumps the epoch and purges
        decoded = store._vp_of(*row, epoch=stale_epoch)
        assert decoded is not None  # the stale reader still gets its VP...
        assert store.get(vp.vp_id) is None  # ...but the cache stays clean
        store.close()


class TestTrustedPinning:
    """``pin_trusted``: a retention pass never drops investigation seeds."""

    @pytest.mark.parametrize(
        "kind", ["memory", "sqlite", "sharded", "sharded-cells", "procs"]
    )
    def test_pinned_trusted_survive_eviction(self, kind):
        store = {
            "memory": MemoryStore,
            "sqlite": SQLiteStore,
            "sharded": lambda: ShardedStore.memory(n_shards=3),
            "sharded-cells": lambda: ShardedStore.memory(n_shards=4, shard_cells=4),
            "procs": lambda: ProcessShardedStore.memory(n_workers=2, shard_cells=2),
        }[kind]()
        try:
            anon = [
                make_vp(seed=10 * m + i + 1, minute=m, x0=500.0 * i)
                for m in range(3)
                for i in range(3)
            ]
            seeds = [make_vp(seed=100 + m, minute=m, x0=40.0) for m in range(3)]
            store.insert_many(anon)
            for vp in seeds:
                store.insert_trusted(vp)

            assert store.evict_before(2, keep_trusted=True) == 6
            # seeds of the evicted minutes survive, in order, queryable
            for m in range(2):
                assert fingerprints(store.by_minute(m)) == fingerprints([seeds[m]])
                assert fingerprints(store.trusted_by_minute(m)) == fingerprints(
                    [seeds[m]]
                )
                assert store.get(seeds[m].vp_id) is not None
                assert seeds[m].vp_id in store
            # minute 2 untouched: full population, original order
            assert fingerprints(store.by_minute(2)) == fingerprints(
                anon[6:9] + [seeds[2]]
            )
            # pinned ids stay claimed; evicted anonymous ids free up
            with pytest.raises(ValidationError):
                store.insert(make_vp(seed=100, minute=0, x0=40.0))
            store.insert(make_vp(seed=1, minute=0, x0=0.0))
            # a later unpinned pass reclaims everything below the cutoff:
            # 2 at minute 0 (seed + re-add), 1 at minute 1, 4 at minute 2
            assert store.evict_before(3) == 7
            assert len(store) == 0
        finally:
            store.close()

    def test_apply_retention_honors_pin_trusted(self):
        store = MemoryStore()
        store.insert(make_vp(seed=1, minute=0))
        store.insert_trusted(make_vp(seed=2, minute=0, x0=40.0))
        policy = RetentionPolicy(window_minutes=1, pin_trusted=True)
        report = apply_retention(store, policy, newest_minute=9)
        assert report.evicted == 1
        assert len(store) == 1 and store.trusted_by_minute(0)
        store.close()

    def test_unpinned_policy_still_evicts_trusted(self):
        store = MemoryStore()
        store.insert_trusted(make_vp(seed=2, minute=0, x0=40.0))
        report = apply_retention(
            store, RetentionPolicy(window_minutes=1), newest_minute=9
        )
        assert report.evicted == 1 and len(store) == 0
        store.close()


class TestCompositeRouting:
    def test_hot_minute_spreads_across_shards(self):
        store = ShardedStore.memory(n_shards=8, shard_cells=8, route_cell_m=500.0)
        vps = [
            make_vp(seed=i + 1, minute=0, x0=700.0 * i, y0=900.0 * (i % 5))
            for i in range(40)
        ]
        store.insert_many(vps)
        occupied = sum(1 for shard in store.shards if len(shard) > 0)
        assert occupied >= 4  # one minute no longer lives on one shard

    def test_insertion_order_preserved_across_shards(self):
        store = ShardedStore.memory(n_shards=4, shard_cells=4, route_cell_m=250.0)
        vps = [
            make_vp(seed=i + 1, minute=0, x0=800.0 * (i % 7), y0=650.0 * (i % 3))
            for i in range(25)
        ]
        for vp in vps[:10]:
            store.insert(vp)
        store.insert_many(vps[10:])
        assert fingerprints(store.by_minute(0)) == fingerprints(vps)
        area = Rect(-10.0, -10.0, 3000.0, 1500.0)
        expected = [
            vp
            for vp in vps
            if any(
                -10.0 <= p.x <= 3000.0 and -10.0 <= p.y <= 1500.0
                for p in vp.trajectory.points
            )
        ]
        assert fingerprints(store.by_minute_in_area(0, area)) == fingerprints(expected)

    def test_minute_only_routing_unchanged(self):
        # shard_cells=1 must behave exactly as the historical router
        store = ShardedStore.memory(n_shards=3)
        vp = make_vp(seed=1, minute=5)
        store.insert(vp)
        assert vp.vp_id in store.shards[5 % 3]

    def test_reopened_sqlite_fleet_keeps_duplicate_check(self, tmp_path):
        paths = [str(tmp_path / f"shard-{i}.sqlite") for i in range(3)]
        store = ShardedStore.sqlite(paths, shard_cells=3)
        vps = [make_vp(seed=i + 1, minute=0, x0=900.0 * i) for i in range(6)]
        store.insert_many(vps)
        store.close()

        reopened = ShardedStore.sqlite(paths, shard_cells=3)
        # the id directory is re-seeded from the shards: duplicates are
        # still rejected and the stored set is intact (order across
        # shards is per-shard after a restart, so compare as sets)
        with pytest.raises(ValidationError):
            reopened.insert(make_vp(seed=1, minute=0))
        assert reopened.insert_many([vps[2], make_vp(seed=99, minute=0)]) == 1
        assert len(reopened) == 7
        merged = reopened.by_minute(0)
        got = {f for f in fingerprints(merged)}
        want = {f for f in fingerprints(vps + [make_vp(seed=99, minute=0)])}
        assert got == want
        # a restart must never order new VPs ahead of persisted ones
        assert fingerprints(merged[-1:]) == fingerprints([make_vp(seed=99, minute=0)])
        reopened.close()


# -- property: any insert/evict interleaving, exact retained answers -------

#: an op is insert (False, seed-ish, minute, x_cell, y_cell) or evict
#: (True, cutoff, _, _, _)
lifecycle_ops = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(0, 6),
        st.integers(0, 3),
        st.integers(-2, 4),
        st.integers(-2, 4),
    ),
    min_size=1,
    max_size=16,
)
areas = st.tuples(
    st.floats(-700, 1400), st.floats(-700, 1400), st.floats(0, 900), st.floats(0, 900)
)


def lifecycle_backends():
    return [
        MemoryStore(),
        SQLiteStore(),
        ShardedStore.memory(n_shards=3),
        ShardedStore.memory(n_shards=4, shard_cells=4, route_cell_m=300.0),
        ProcessShardedStore.memory(n_workers=2, shard_cells=2, route_cell_m=300.0),
    ]


@given(ops=lifecycle_ops, area=areas)
@settings(max_examples=25, deadline=None)
def test_any_interleaving_retains_exactly_the_survivors(ops, area):
    backends = lifecycle_backends()
    #: reference model: minute -> VPs in insertion order, evict = del
    alive: dict[int, list] = {}

    for index, (is_evict, a, minute, xc, yc) in enumerate(ops):
        if is_evict:
            cutoff = a  # evict everything below minute `a`
            expected = sum(len(vps) for m, vps in alive.items() if m < cutoff)
            for m in [m for m in alive if m < cutoff]:
                del alive[m]
            for store in backends:
                assert store.evict_before(cutoff) == expected
        else:
            # unique per op so inserts never collide across interleavings
            seed = 1 + index + 100 * (a + 10 * (minute + 4 * ((xc + 2) + 7 * (yc + 2))))
            copies = [
                make_vp(seed=seed, n=2, minute=minute, x0=300.0 * xc, y0=300.0 * yc)
                for _ in range(len(backends) + 1)
            ]
            alive.setdefault(minute, []).append(copies[-1])
            for store, vp in zip(backends, copies):
                store.insert(vp)

    x0, y0, w, h = area
    rect = Rect(x0, y0, x0 + w, y0 + h)
    for store in backends:
        assert len(store) == sum(len(vps) for vps in alive.values())
        assert store.minutes() == sorted(alive)
        for minute in range(4):
            survivors = alive.get(minute, [])
            assert fingerprints(store.by_minute(minute)) == fingerprints(survivors)
            expected_area = [
                vp
                for vp in survivors
                if any(
                    rect.x_min <= p.x <= rect.x_max and rect.y_min <= p.y <= rect.y_max
                    for p in vp.trajectory.points
                )
            ]
            assert fingerprints(store.by_minute_in_area(minute, rect)) == fingerprints(
                expected_area
            )
        store.close()
