"""Concurrency contract tests for every VP store backend.

Each backend must keep exact semantics under parallel writers: no lost
VPs, no duplicates, and batch-insert counts that sum to the number of
VPs actually stored — byte-for-byte the state a serial reference run
produces.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import StorageError
from repro.geo.geometry import Rect
from repro.store import MemoryStore, ProcessShardedStore, ShardedStore, SQLiteStore
from tests.store.conftest import fingerprint, make_vp

N_THREADS = 6
VPS_PER_THREAD = 12


def make_backend(kind: str, tmp_path):
    """Fresh backend instances for each concurrency scenario."""
    tmp_path.mkdir(parents=True, exist_ok=True)
    if kind == "memory":
        return MemoryStore()
    if kind == "sqlite":
        return SQLiteStore()
    if kind == "sqlite-file":
        return SQLiteStore(str(tmp_path / "concurrent.sqlite"))
    if kind == "sharded":
        return ShardedStore.memory(n_shards=3)
    if kind == "sharded-sqlite":
        return ShardedStore.sqlite(
            [str(tmp_path / f"shard-{i}.sqlite") for i in range(3)]
        )
    if kind == "procs":
        return ProcessShardedStore.memory(n_workers=2, shard_cells=2)
    if kind == "procs-sqlite":
        return ProcessShardedStore.sqlite(
            [str(tmp_path / f"worker-{i}.sqlite") for i in range(2)],
            shard_cells=2,
        )
    raise AssertionError(kind)


BACKENDS = [
    "memory",
    "sqlite",
    "sqlite-file",
    "sharded",
    "sharded-sqlite",
    "procs",
    "procs-sqlite",
]


def corpus_for(thread: int) -> list:
    """A thread's batch: its own VPs plus shared duplicates."""
    own = [
        make_vp(seed=1000 + thread * VPS_PER_THREAD + i, minute=i % 4, x0=25.0 * i)
        for i in range(VPS_PER_THREAD)
    ]
    shared = [make_vp(seed=1, minute=0), make_vp(seed=2, minute=1)]
    return own + shared


@pytest.mark.parametrize("kind", BACKENDS)
class TestConcurrentIngest:
    def test_parallel_insert_many_no_lost_no_duplicated(self, kind, tmp_path):
        batches = [corpus_for(t) for t in range(N_THREADS)]

        serial = make_backend(kind, tmp_path / "serial")
        serial_counts = [serial.insert_many(batch) for batch in batches]
        expected_ids = {vp.vp_id for batch in batches for vp in batch}
        assert len(serial) == len(expected_ids)

        store = make_backend(kind, tmp_path / "parallel")
        barrier = threading.Barrier(N_THREADS, timeout=10.0)

        def ingest(batch):
            barrier.wait()  # maximize overlap
            return store.insert_many(batch)

        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            counts = list(pool.map(ingest, batches))

        # counts sum to the stored population: nothing lost, nothing doubled
        assert sum(counts) == len(store) == len(expected_ids) == sum(serial_counts)
        for vp_id in expected_ids:
            assert vp_id in store
        # per-minute populations identical to the serial reference
        assert store.minutes() == serial.minutes()
        for minute in serial.minutes():
            got = {fingerprint(vp) for vp in store.by_minute(minute)}
            want = {fingerprint(vp) for vp in serial.by_minute(minute)}
            assert got == want
        serial.close()
        store.close()

    def test_parallel_readers_during_writes(self, kind, tmp_path):
        store = make_backend(kind, tmp_path)
        seed_vps = [make_vp(seed=i + 1, minute=0, x0=10.0 * i) for i in range(8)]
        store.insert_many(seed_vps)
        area = Rect(-5, -5, 500, 5)
        stop = threading.Event()
        errors: list[Exception] = []

        def reader():
            try:
                while not stop.is_set():
                    assert len(store.by_minute(0)) >= 8
                    store.by_minute_in_area(0, area)
                    assert seed_vps[0].vp_id in store
            except Exception as exc:  # surfaced after join
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for i in range(40):
            store.insert(make_vp(seed=500 + i, minute=0, x0=1000.0 + i))
        stop.set()
        for t in threads:
            t.join(timeout=10.0)
        assert not errors
        assert len(store) == 48
        store.close()


class TestSQLiteConcurrencyMachinery:
    def test_per_thread_connections_share_one_dataset(self):
        store = SQLiteStore()
        store.insert(make_vp(seed=1))
        seen: dict[str, int] = {}

        def probe(name: str) -> None:
            seen[name] = len(store)  # forces a thread-local connection

        threads = [
            threading.Thread(target=probe, args=(f"t{i}",)) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen == {"t0": 1, "t1": 1, "t2": 1}
        assert store.stats().detail["connections"] >= 4  # keepalive + probes
        store.close()

    def test_decode_cache_hits_on_repeated_reads(self):
        store = SQLiteStore(decode_cache=16)
        vp = make_vp(seed=3)
        store.insert(vp)
        first = store.get(vp.vp_id)
        second = store.get(vp.vp_id)
        assert first is second  # cached object reused
        cache = store.stats().detail["decode_cache"]
        assert cache["hits"] >= 1 and cache["misses"] == 1
        store.close()

    def test_decode_cache_evicts_beyond_capacity(self):
        store = SQLiteStore(decode_cache=2)
        vps = [make_vp(seed=10 + i, minute=0, x0=50.0 * i) for i in range(4)]
        store.insert_many(vps)
        for vp in vps:
            assert fingerprint(store.get(vp.vp_id)) == fingerprint(vp)
        assert store.stats().detail["decode_cache"]["size"] == 2
        store.close()

    def test_decode_cache_disabled(self):
        store = SQLiteStore(decode_cache=0)
        vp = make_vp(seed=4)
        store.insert(vp)
        assert store.get(vp.vp_id) is not store.get(vp.vp_id)
        assert fingerprint(store.get(vp.vp_id)) == fingerprint(vp)
        store.close()

    def test_closed_store_refuses_queries(self):
        store = SQLiteStore()
        store.insert(make_vp(seed=5))
        store.close()
        with pytest.raises(StorageError):
            len(store)
        store.close()  # idempotent

    def test_trusted_flag_survives_cache_and_threads(self):
        store = SQLiteStore()
        vp = make_vp(seed=6)
        store.insert_trusted(vp)
        out: list[bool] = []

        def probe() -> None:
            got = store.get(vp.vp_id)
            out.append(got is not None and got.trusted)

        t = threading.Thread(target=probe)
        t.start()
        t.join()
        assert out == [True]
        assert len(store.trusted_by_minute(0)) == 1
        store.close()


class TestShardedFanout:
    def test_multi_minute_batch_fans_out_and_counts_exactly(self):
        store = ShardedStore.memory(n_shards=4)
        vps = [make_vp(seed=100 + i, minute=i % 4, x0=10.0 * i) for i in range(32)]
        assert store.insert_many(vps) == 32
        assert [len(s) for s in store.shards] == [8, 8, 8, 8]
        assert store.stats().detail["fanout_workers"] == 4
        store.close()

    def test_same_id_at_different_minutes_lands_on_one_shard_only(self):
        # the same R value at two minutes routes to two shards; the
        # fleet-wide reservation must keep exactly one copy even when
        # the two inserts race
        from dataclasses import replace

        for _ in range(20):
            store = ShardedStore.memory(n_shards=2)
            a = make_vp(seed=7, minute=0)
            b = make_vp(seed=8, minute=1)
            # forge the id collision across minutes (keeps b's timestamps)
            b.digests = [replace(vd, vp_id=a.vp_id) for vd in b.digests]
            assert a.vp_id == b.vp_id and a.minute != b.minute
            barrier = threading.Barrier(2, timeout=5.0)
            counts = []

            def ingest(vp):
                barrier.wait()
                counts.append(store.insert_many([vp]))

            threads = [threading.Thread(target=ingest, args=(vp,)) for vp in (a, b)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert sorted(counts) == [0, 1]
            assert len(store) == 1
            store.close()

    def test_insert_trusted_rejection_does_not_mutate(self):
        store = ShardedStore.memory(n_shards=2)
        original = make_vp(seed=9, minute=0)
        store.insert_many([original])
        duplicate = make_vp(seed=9, minute=0)  # same id, caller-held copy
        with pytest.raises(Exception) as excinfo:
            store.insert_trusted(duplicate)
        assert "already exists" in str(excinfo.value)
        assert duplicate.trusted is False  # rejected insert never mutates
        assert store.get(original.vp_id).trusted is False
        store.close()

    def test_serial_fanout_option(self):
        store = ShardedStore(
            [MemoryStore() for _ in range(3)], fanout_workers=0
        )
        vps = [make_vp(seed=200 + i, minute=i % 3) for i in range(9)]
        assert store.insert_many(vps) == 9
        assert len(store) == 9
        store.close()


class TestEvictionRaces:
    """Regression: retention passes racing ingest must never error.

    Inserting into a minute that was just evicted re-creates it on the
    owning shard — the reservation must treat evicted ids as free, not
    raise a duplicate error off stale directory state.
    """

    @pytest.mark.parametrize("shard_cells", [1, 4])
    def test_insert_into_just_evicted_minute_recreates_shard(self, shard_cells):
        store = ShardedStore.memory(n_shards=4, shard_cells=shard_cells)
        vps = [make_vp(seed=300 + i, minute=0, x0=40.0 * i) for i in range(8)]
        store.insert_many(vps)
        assert store.evict_before(1) == 8
        # the very VPs that were evicted insert cleanly again
        assert store.insert_many(vps) == 8
        assert len(store.by_minute(0)) == 8
        for vp in vps:
            assert vp.vp_id in store
        store.close()

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_concurrent_eviction_and_ingest_no_errors(self, kind, tmp_path):
        store = make_backend(kind, tmp_path)
        shard_cells = 3 if kind == "sharded" else 1
        if kind == "sharded":
            store.close()
            store = ShardedStore.memory(n_shards=3, shard_cells=shard_cells)
        stop = threading.Event()
        errors: list[Exception] = []

        def evictor() -> None:
            try:
                while not stop.is_set():
                    store.evict_before(10)  # everything in flight is older
            except Exception as exc:  # surfaced after join
                errors.append(exc)

        t = threading.Thread(target=evictor)
        t.start()
        try:
            for i in range(30):
                batch = [
                    make_vp(seed=400 + 4 * i + j, minute=j % 3, x0=30.0 * i)
                    for j in range(4)
                ]
                assert store.insert_many(batch) == 4  # ids evicted, never taken
        finally:
            stop.set()
            t.join(timeout=10.0)
        assert not errors
        store.evict_before(10)
        assert len(store) == 0  # final pass leaves nothing behind
        store.close()
