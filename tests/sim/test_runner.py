"""Tests for the full-fidelity simulation runner."""

import pytest

from repro.core.viewmap import build_viewmap
from repro.errors import SimulationError
from repro.mobility.scenarios import city_scenario, two_vehicle_passes
from repro.radio.channel import DsrcChannel
from repro.sim.runner import run_viewmap_simulation


@pytest.fixture(scope="module")
def small_run():
    scn = city_scenario(area_km=1.5, n_vehicles=15, duration_s=120, seed=5)
    channel = DsrcChannel(corridor_block_m=scn.block_m, seed=5)
    return run_viewmap_simulation(scn.traces, channel, seed=5)


class TestSimulationResult:
    def test_one_actual_vp_per_vehicle_minute(self, small_run):
        assert len(small_run.actual_vps(0)) == 15
        assert len(small_run.actual_vps(1)) == 15

    def test_ground_truth_complete(self, small_run):
        for vp in small_run.actual_vps(0):
            assert vp.vp_id in small_run.actual_owner
        for vp in small_run.guard_vps(0):
            assert vp.vp_id in small_run.guard_creator

    def test_vehicle_sequences_ordered(self, small_run):
        for vid, seq in small_run.vehicle_sequence.items():
            assert len(seq) == 2  # two minutes simulated

    def test_neighbor_counts_present(self, small_run):
        assert set(small_run.neighbor_counts[0]) == set(range(15))

    def test_guards_created_when_neighbors_exist(self, small_run):
        total_neighbors = sum(small_run.neighbor_counts[0].values())
        if total_neighbors > 0:
            assert len(small_run.guard_vps(0)) > 0

    def test_all_vps_collects_everything(self, small_run):
        expected = sum(len(v) for v in small_run.vps_by_minute.values())
        assert len(small_run.all_vps()) == expected

    def test_short_trace_rejected(self):
        scn = city_scenario(area_km=1.0, n_vehicles=2, duration_s=60, seed=1)
        channel = DsrcChannel(seed=1)
        scn.traces.duration_s = 30  # force an invalid duration
        with pytest.raises(SimulationError):
            run_viewmap_simulation(scn.traces, channel)


class TestLinkageRealism:
    def test_close_pair_links_in_viewmap(self):
        traces = two_vehicle_passes([80.0], dwell_s=60)
        channel = DsrcChannel(seed=2)
        result = run_viewmap_simulation(traces, channel, seed=2)
        vmap = build_viewmap(result.vps_by_minute[0], minute=0)
        a, b = result.actual_vps(0)
        assert vmap.graph.has_edge(a.vp_id, b.vp_id)

    def test_distant_pair_does_not_link(self):
        traces = two_vehicle_passes([500.0], dwell_s=60)
        channel = DsrcChannel(seed=3)
        result = run_viewmap_simulation(traces, channel, seed=3)
        vmap = build_viewmap(result.vps_by_minute[0], minute=0)
        a, b = result.actual_vps(0)
        assert not vmap.graph.has_edge(a.vp_id, b.vp_id)

    def test_full_radio_mode_also_links(self):
        traces = two_vehicle_passes([80.0], dwell_s=60)
        channel = DsrcChannel(seed=4)
        result = run_viewmap_simulation(traces, channel, seed=4, fast_links=False)
        vmap = build_viewmap(result.vps_by_minute[0], minute=0)
        a, b = result.actual_vps(0)
        assert vmap.graph.has_edge(a.vp_id, b.vp_id)


class TestConcurrentIngest:
    def _fabricated_result(self, n_minutes=2, per_minute=6):
        from repro.sim.runner import SimulationResult
        from tests.store.conftest import make_vp

        result = SimulationResult()
        seed = 1
        for minute in range(n_minutes):
            for i in range(per_minute):
                result.vps_by_minute[minute].append(
                    make_vp(seed=seed, minute=minute, x0=30.0 * i)
                )
                seed += 1
        return result

    def test_concurrent_matches_serial_population(self):
        from repro.store import MemoryStore

        result = self._fabricated_result()
        serial, threaded = MemoryStore(), MemoryStore()
        assert result.ingest_into(serial) == result.ingest_concurrently(
            threaded, workers=4
        )
        assert len(serial) == len(threaded) == 12
        for minute in serial.minutes():
            assert {vp.vp_id for vp in serial.by_minute(minute)} == {
                vp.vp_id for vp in threaded.by_minute(minute)
            }

    def test_workers_exceeding_minutes_still_ingests_all(self):
        from repro.store import MemoryStore

        result = self._fabricated_result(n_minutes=1, per_minute=8)
        store = MemoryStore()
        assert result.ingest_concurrently(store, workers=8) == 8
        assert len(store) == 8

    def test_empty_minute_from_defaultdict_read_is_harmless(self):
        from repro.store import MemoryStore

        result = self._fabricated_result(n_minutes=1, per_minute=3)
        result.vps_by_minute[7]  # defaultdict read leaves an empty minute
        store = MemoryStore()
        assert result.ingest_concurrently(store, workers=4) == 3
        assert len(store) == 3

    def test_no_vps_at_all(self):
        from repro.sim.runner import SimulationResult
        from repro.store import MemoryStore

        assert SimulationResult().ingest_concurrently(MemoryStore(), workers=4) == 0

    def test_retention_replay_keeps_only_the_window(self):
        from repro.store import MemoryStore, RetentionPolicy

        result = self._fabricated_result(n_minutes=4, per_minute=5)
        store = MemoryStore()
        inserted = result.ingest_concurrently(
            store, workers=4, retention=RetentionPolicy(window_minutes=2)
        )
        assert inserted == 20  # every VP passed through the store...
        assert store.minutes() == [2, 3]  # ...but only the window remains
        assert len(store) == 10
        for minute in (2, 3):
            assert {vp.vp_id for vp in store.by_minute(minute)} == {
                vp.vp_id for vp in result.vps_by_minute[minute]
            }

    def test_retention_replay_with_single_worker(self):
        from repro.store import MemoryStore, RetentionPolicy

        result = self._fabricated_result(n_minutes=3, per_minute=4)
        store = MemoryStore()
        inserted = result.ingest_concurrently(
            store, workers=1, retention=RetentionPolicy(window_minutes=1)
        )
        assert inserted == 12
        assert store.minutes() == [2]
