"""Tests for the full-fidelity simulation runner."""

import pytest

from repro.core.viewmap import build_viewmap
from repro.errors import SimulationError
from repro.mobility.scenarios import city_scenario, two_vehicle_passes
from repro.radio.channel import DsrcChannel
from repro.sim.runner import run_viewmap_simulation


@pytest.fixture(scope="module")
def small_run():
    scn = city_scenario(area_km=1.5, n_vehicles=15, duration_s=120, seed=5)
    channel = DsrcChannel(corridor_block_m=scn.block_m, seed=5)
    return run_viewmap_simulation(scn.traces, channel, seed=5)


class TestSimulationResult:
    def test_one_actual_vp_per_vehicle_minute(self, small_run):
        assert len(small_run.actual_vps(0)) == 15
        assert len(small_run.actual_vps(1)) == 15

    def test_ground_truth_complete(self, small_run):
        for vp in small_run.actual_vps(0):
            assert vp.vp_id in small_run.actual_owner
        for vp in small_run.guard_vps(0):
            assert vp.vp_id in small_run.guard_creator

    def test_vehicle_sequences_ordered(self, small_run):
        for vid, seq in small_run.vehicle_sequence.items():
            assert len(seq) == 2  # two minutes simulated

    def test_neighbor_counts_present(self, small_run):
        assert set(small_run.neighbor_counts[0]) == set(range(15))

    def test_guards_created_when_neighbors_exist(self, small_run):
        total_neighbors = sum(small_run.neighbor_counts[0].values())
        if total_neighbors > 0:
            assert len(small_run.guard_vps(0)) > 0

    def test_all_vps_collects_everything(self, small_run):
        expected = sum(len(v) for v in small_run.vps_by_minute.values())
        assert len(small_run.all_vps()) == expected

    def test_short_trace_rejected(self):
        scn = city_scenario(area_km=1.0, n_vehicles=2, duration_s=60, seed=1)
        channel = DsrcChannel(seed=1)
        scn.traces.duration_s = 30  # force an invalid duration
        with pytest.raises(SimulationError):
            run_viewmap_simulation(scn.traces, channel)


class TestLinkageRealism:
    def test_close_pair_links_in_viewmap(self):
        traces = two_vehicle_passes([80.0], dwell_s=60)
        channel = DsrcChannel(seed=2)
        result = run_viewmap_simulation(traces, channel, seed=2)
        vmap = build_viewmap(result.vps_by_minute[0], minute=0)
        a, b = result.actual_vps(0)
        assert vmap.graph.has_edge(a.vp_id, b.vp_id)

    def test_distant_pair_does_not_link(self):
        traces = two_vehicle_passes([500.0], dwell_s=60)
        channel = DsrcChannel(seed=3)
        result = run_viewmap_simulation(traces, channel, seed=3)
        vmap = build_viewmap(result.vps_by_minute[0], minute=0)
        a, b = result.actual_vps(0)
        assert not vmap.graph.has_edge(a.vp_id, b.vp_id)

    def test_full_radio_mode_also_links(self):
        traces = two_vehicle_passes([80.0], dwell_s=60)
        channel = DsrcChannel(seed=4)
        result = run_viewmap_simulation(traces, channel, seed=4, fast_links=False)
        vmap = build_viewmap(result.vps_by_minute[0], minute=0)
        a, b = result.actual_vps(0)
        assert vmap.graph.has_edge(a.vp_id, b.vp_id)
