"""Tests for contact-interval extraction."""

from repro.geo.geometry import Point
from repro.geo.trajectory import Trajectory
from repro.mobility.traces import Trace, TraceSet
from repro.sim.contacts import contact_intervals, mean_contact_time


def linear_trace(vid, x0, v, n):
    traj = Trajectory(
        times=[float(t) for t in range(n + 1)],
        points=[Point(x0 + v * t, 0.0) for t in range(n + 1)],
    )
    return Trace(vehicle_id=vid, trajectory=traj)


class TestContactIntervals:
    def test_passing_vehicles_single_interval(self):
        # vehicle 1 closes a 900 m gap at 10 m/s relative: in range from
        # t=50 until the trace ends at t=100 -> one 51-second contact
        ts = TraceSet(duration_s=100)
        ts.add(linear_trace(0, 0.0, 10.0, 100))
        ts.add(linear_trace(1, -900.0, 20.0, 100))
        intervals = contact_intervals(ts, max_range_m=400.0)
        assert intervals == [51]

    def test_never_in_range(self):
        ts = TraceSet(duration_s=50)
        ts.add(linear_trace(0, 0.0, 10.0, 50))
        ts.add(linear_trace(1, 10_000.0, 10.0, 50))
        assert contact_intervals(ts, max_range_m=400.0) == []

    def test_always_in_range_counts_full_duration(self):
        ts = TraceSet(duration_s=50)
        ts.add(linear_trace(0, 0.0, 10.0, 50))
        ts.add(linear_trace(1, 50.0, 10.0, 50))
        intervals = contact_intervals(ts, max_range_m=400.0)
        assert intervals == [51]

    def test_los_fn_filters_contacts(self):
        ts = TraceSet(duration_s=50)
        ts.add(linear_trace(0, 0.0, 10.0, 50))
        ts.add(linear_trace(1, 50.0, 10.0, 50))
        assert contact_intervals(ts, los_fn=lambda a, b: False) == []

    def test_mean_contact_time(self):
        ts = TraceSet(duration_s=50)
        ts.add(linear_trace(0, 0.0, 10.0, 50))
        ts.add(linear_trace(1, 50.0, 10.0, 50))
        assert mean_contact_time(ts) == 51.0

    def test_mean_no_contacts_zero(self):
        ts = TraceSet(duration_s=10)
        ts.add(linear_trace(0, 0.0, 1.0, 10))
        ts.add(linear_trace(1, 9_000.0, 1.0, 10))
        assert mean_contact_time(ts) == 0.0

    def test_faster_relative_speed_shorter_contacts(self):
        # 10 m/s relative closes the 800 m contact corridor in ~80 s;
        # 40 m/s relative passes through in ~20 s
        slow = TraceSet(duration_s=200)
        slow.add(linear_trace(0, 0.0, 10.0, 200))
        slow.add(linear_trace(1, -1500.0, 20.0, 200))
        fast = TraceSet(duration_s=200)
        fast.add(linear_trace(0, 0.0, 10.0, 200))
        fast.add(linear_trace(1, -1500.0, 50.0, 200))
        assert 0 < mean_contact_time(fast) < mean_contact_time(slow)
