"""Tests for the constant-memory streaming load generator."""

from __future__ import annotations

import pytest

from repro.core.system import ViewMapSystem
from repro.errors import SimulationError
from repro.net.messages import MAX_VP_BATCH, decode_message
from repro.net.server import ViewMapServer
from repro.net.transport import InMemoryNetwork
from repro.sim import iter_minute_frames, iter_minute_vps, iter_upload_payloads
from repro.store.codec import decode_vp_batch


class TestStreamShape:
    def test_minute_major_order_and_population(self):
        seen = list(iter_minute_vps(3, 2, seed=5))
        assert [minute for minute, _ in seen] == [0, 0, 0, 1, 1, 1]
        ids = {vp.vp_id for _, vp in seen}
        assert len(ids) == 6  # seed-derived identities never collide
        for minute, vp in seen:
            assert vp.minute == minute
            assert len(vp.digests) == 60  # wire-eligible: complete VPs

    def test_frames_chunk_within_minutes(self):
        frames = list(iter_minute_frames(10, 2, seed=1, batch_vps=4))
        assert [(f.minute, f.n_vps) for f in frames] == [
            (0, 4), (0, 4), (0, 2), (1, 4), (1, 4), (1, 2),
        ]
        for frame in frames:
            vps = decode_vp_batch(frame.frame)
            assert len(vps) == frame.n_vps
            assert all(vp.minute == frame.minute for vp in vps)

    def test_streams_are_deterministic_and_seed_disjoint(self):
        a = [f.frame for f in iter_minute_frames(4, 1, seed=7)]
        b = [f.frame for f in iter_minute_frames(4, 1, seed=7)]
        assert a == b
        other = [f.frame for f in iter_minute_frames(4, 1, seed=8)]
        assert set(a).isdisjoint(other)

    def test_lazy_generation_no_upfront_materialization(self):
        # a fleet far too large to materialize must still hand out its
        # first frame promptly — only batch_vps VPs exist at a time
        stream = iter_minute_frames(1_000_000, 1_000, seed=0, batch_vps=8)
        first = next(stream)
        assert first.minute == 0 and first.n_vps == 8

    def test_parameter_validation(self):
        with pytest.raises(SimulationError):
            list(iter_minute_frames(0, 1))
        with pytest.raises(SimulationError):
            list(iter_minute_frames(1, 0))
        with pytest.raises(SimulationError):
            list(iter_minute_frames(1, 1, batch_vps=0))
        with pytest.raises(SimulationError):
            list(iter_minute_frames(1, 1, batch_vps=MAX_VP_BATCH + 1))


class TestStreamIngest:
    def test_payloads_ingest_through_the_server(self):
        net = InMemoryNetwork()
        system = ViewMapSystem(key_bits=512, seed=1)
        server = ViewMapServer(system=system, network=net)
        n_vehicles, minutes = 5, 2
        for payload in iter_upload_payloads(n_vehicles, minutes, seed=3, batch_vps=4):
            reply = decode_message(net.send("vehicle", server.address, payload))
            assert reply["kind"] == "batch_ack"
            assert all(reply["accepted"])
        assert len(system.database) == n_vehicles * minutes
        assert server.metrics.snapshot()["server.upload.accepted"]["value"] == (
            n_vehicles * minutes
        )

    def test_replayed_stream_is_all_duplicates(self):
        net = InMemoryNetwork()
        system = ViewMapSystem(key_bits=512, seed=1)
        server = ViewMapServer(system=system, network=net)
        payloads = list(iter_upload_payloads(3, 1, seed=9, batch_vps=3))
        for payload in payloads:
            net.send("vehicle", server.address, payload)
        for payload in payloads:  # identical bytes: every VP already stored
            reply = decode_message(net.send("vehicle", server.address, payload))
            assert not any(reply["accepted"])
        assert len(system.database) == 3


class TestStreamConvoy:
    def test_trusted_and_witnesses_are_mutually_linked(self):
        from repro.core.viewmap import mutual_linkage
        from repro.sim.stream import stream_convoy_vps

        trusted, witnesses = stream_convoy_vps(0, 0, 2, (5000.0, 5000.0))
        assert len(witnesses) == 2
        members = [trusted] + witnesses
        for a in members:
            for b in members:
                if a is not b:
                    assert mutual_linkage(a, b)

    def test_convoy_vps_are_wire_eligible_and_cross_the_site(self):
        from repro.net.messages import pack_vp_batch_frame
        from repro.sim.stream import stream_convoy_vps

        trusted, witnesses = stream_convoy_vps(3, 2, 1, (1000.0, 1000.0))
        for vp in [trusted] + witnesses:
            assert vp.minute == 2
            assert len(vp.digests) == 60
            assert vp.start_point.x < 1000.0 < vp.end_point.x
        # complete VPs: the anonymous witnesses fit the zero-decode frame
        assert pack_vp_batch_frame(witnesses)

    def test_deterministic_and_disjoint_across_minutes(self):
        from repro.sim.stream import stream_convoy_vps

        t1, w1 = stream_convoy_vps(4, 0, 2, (0.0, 0.0))
        t2, w2 = stream_convoy_vps(4, 0, 2, (0.0, 0.0))
        assert t1.vp_id == t2.vp_id
        assert [w.vp_id for w in w1] == [w.vp_id for w in w2]
        t3, w3 = stream_convoy_vps(4, 1, 2, (0.0, 0.0))
        ids_0 = {t1.vp_id} | {w.vp_id for w in w1}
        ids_1 = {t3.vp_id} | {w.vp_id for w in w3}
        assert ids_0.isdisjoint(ids_1)

    def test_needs_a_witness(self):
        from repro.sim.stream import stream_convoy_vps

        with pytest.raises(SimulationError):
            stream_convoy_vps(0, 0, 0, (0.0, 0.0))
