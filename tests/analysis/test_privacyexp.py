"""Tests for the privacy experiment driver (small configurations)."""

from repro.analysis.privacyexp import privacy_experiment


class TestPrivacyExperiment:
    def test_curve_structure(self):
        curves = privacy_experiment(
            n_vehicles=15, area_km=1.5, minutes=4, n_targets=3, seed=1
        )
        assert len(curves.minutes) == 4
        assert len(curves.entropy_bits) == 4
        assert len(curves.success_ratio) == 4
        assert curves.label == "n=15"

    def test_initial_conditions(self):
        curves = privacy_experiment(
            n_vehicles=15, area_km=1.5, minutes=3, n_targets=3, seed=2
        )
        assert curves.entropy_bits[0] == 0.0
        assert curves.success_ratio[0] == 1.0

    def test_no_guard_label_and_behaviour(self):
        curves = privacy_experiment(
            n_vehicles=15, area_km=1.5, minutes=4, with_guards=False,
            n_targets=3, seed=3,
        )
        assert "no guards" in curves.label
        # without guards tracking stays easier than the guarded variant
        guarded = privacy_experiment(
            n_vehicles=15, area_km=1.5, minutes=4, n_targets=3, seed=3
        )
        assert curves.success_ratio[-1] >= guarded.success_ratio[-1] - 0.05

    def test_custom_label(self):
        curves = privacy_experiment(
            n_vehicles=10, area_km=1.5, minutes=2, n_targets=2, seed=4,
            label="custom",
        )
        assert curves.label == "custom"
