"""Tests for false-linkage analysis."""

from repro.analysis.falselink import empirical_false_linkage, false_linkage_curves
from repro.crypto.bloom import false_linkage_rate


class TestCurves:
    def test_curve_structure(self):
        curves = false_linkage_curves([1024, 2048], [100, 200, 300])
        assert set(curves) == {1024, 2048}
        assert len(curves[1024]) == 3

    def test_smaller_filter_worse(self):
        curves = false_linkage_curves([1024, 4096], [300])
        assert curves[1024][0] > curves[4096][0]


class TestEmpirical:
    def test_matches_analytic_within_factor(self):
        analytic = false_linkage_rate(2048, 300)
        measured = empirical_false_linkage(2048, 300, trials=400, seed=1)
        assert measured < 10 * analytic + 0.01
        assert measured > analytic / 10

    def test_zero_items_no_false_links(self):
        assert empirical_false_linkage(2048, 0, trials=50, seed=2) == 0.0

    def test_small_filter_measurably_worse(self):
        small = empirical_false_linkage(512, 300, trials=200, seed=3)
        large = empirical_false_linkage(4096, 300, trials=200, seed=3)
        assert small > large
