"""Unit tests for the campaign-grid subsystem (config, rows, invariants)."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.analysis.campaigns import (
    CAMPAIGNS,
    ROW_SCHEMA,
    CampaignGridConfig,
    CampaignRow,
    row_invariant_violations,
    rows_to_json,
    run_campaign_cell,
    run_campaign_grid,
)
from repro.attacks.poisoning import all_ones_attack_detected
from repro.errors import ValidationError


def tiny_config(**overrides) -> CampaignGridConfig:
    """A single-cell-sized grid config the unit tests can afford."""
    defaults = dict(
        campaigns=("clean", "faker"),
        backends=("memory",),
        retentions=("window",),
        codecs=("frame",),
        n_vehicles=4,
        witnesses=1,
        # one VP per request keeps the honest request volume high enough
        # that four attack batches stay inside the goodput floor, like
        # the full-size default workload
        batch_vps=1,
        n_fakes=2,
        n_chain=3,
        n_dummies=8,
        max_vps_per_minute=7,
    )
    defaults.update(overrides)
    return CampaignGridConfig(**defaults)


class TestConfigValidation:
    def test_rejects_unknown_axis_values(self):
        with pytest.raises(ValidationError):
            CampaignGridConfig(campaigns=("clean", "ddos"))
        with pytest.raises(ValidationError):
            CampaignGridConfig(backends=("postgres",))
        with pytest.raises(ValidationError):
            CampaignGridConfig(retentions=("forever",))
        with pytest.raises(ValidationError):
            CampaignGridConfig(codecs=("protobuf",))

    def test_rejects_empty_axes_and_bad_timeline(self):
        with pytest.raises(ValidationError):
            CampaignGridConfig(backends=())
        with pytest.raises(ValidationError):
            CampaignGridConfig(minutes=1)
        with pytest.raises(ValidationError):
            CampaignGridConfig(minutes=3, attack_minute=3)
        with pytest.raises(ValidationError):
            CampaignGridConfig(wire_latency_s=0.0)

    def test_rejects_unknown_cell_axes(self):
        cfg = tiny_config()
        with pytest.raises(ValidationError):
            run_campaign_cell("ddos", "memory", "window", "frame", cfg)
        with pytest.raises(ValidationError):
            run_campaign_cell("clean", "memory", "forever", "frame", cfg)
        with pytest.raises(ValidationError):
            run_campaign_cell("clean", "memory", "window", "protobuf", cfg)


class TestRowShape:
    def test_rows_serialize_stably(self):
        cfg = tiny_config()
        rows = run_campaign_grid(cfg)
        assert [row.campaign for row in rows] == ["clean", "faker"]
        text = rows_to_json(rows)
        parsed = json.loads(text)
        assert [r["schema"] for r in parsed] == [ROW_SCHEMA, ROW_SCHEMA]
        # canonical form: reserializing the parsed JSON is a fixed point
        assert json.dumps(parsed, indent=2, sort_keys=True) + "\n" == text

    def test_clean_cell_sanity(self):
        cfg = tiny_config()
        row = run_campaign_cell("clean", "memory", "window", "frame", cfg)
        per_minute = cfg.n_vehicles + cfg.witnesses
        assert row.honest_uploaded == per_minute * cfg.minutes
        assert row.accepted == row.honest_uploaded
        assert row.rejected == 0 and row.attack_vps == 0
        # window of 2 minutes at watermark 2 retains minutes 1 and 2
        assert row.honest_retained == per_minute * cfg.window_minutes
        assert row.throughput_ratio == 1.0
        assert row_invariant_violations(row) == []

    def test_kitchen_sink_combines_all_components(self):
        cfg = tiny_config()
        control = run_campaign_cell("clean", "memory", "none", "frame", cfg)
        row = run_campaign_cell(
            "kitchen_sink", "memory", "none", "frame", cfg, control=control
        )
        expected = cfg.n_fakes + cfg.n_chain + cfg.n_dummies + cfg.n_saturated + 1
        assert row.attack_vps == expected
        assert row.attack_success_rate == 0.0
        assert "far_future_minute" in row.detected_signals
        assert "overload" in row.detected_signals
        assert row_invariant_violations(row) == []

    def test_saturated_poison_vps_are_detectable(self):
        from repro.analysis.campaigns import _forge_component

        cfg = tiny_config()
        forged = _forge_component("poisoning", cfg, [])
        assert sum(all_ones_attack_detected(vp) for vp in forged) == cfg.n_saturated
        assert max(vp.minute for vp in forged) > cfg.minutes


class TestInvariantChecks:
    def _clean_row(self) -> CampaignRow:
        cfg = tiny_config()
        return run_campaign_cell("clean", "memory", "window", "frame", cfg)

    def test_detects_solicited_fakes(self):
        row = dataclasses.replace(
            self._clean_row(), campaign="faker", attack_vps=2, attack_solicited=1,
            attack_success_rate=0.5, detected_signals=("verification_reject",),
            detection_latency_min=0, throughput_ratio=0.9,
        )
        assert any("solicited" in v for v in row_invariant_violations(row))

    def test_detects_watermark_overrun_and_missed_detection(self):
        row = dataclasses.replace(
            self._clean_row(), campaign="poisoning", attack_vps=3,
            watermark_final=99, clamp_engagements=1, throughput_ratio=0.9,
            detection_latency_min=-1, honest_vp_loss=0.5,
        )
        violations = row_invariant_violations(row)
        assert any("overran the clamp" in v for v in violations)
        assert any("never detected" in v for v in violations)

    def test_detects_stale_schema_and_false_positives(self):
        stale = dataclasses.replace(self._clean_row(), schema="campaign-row/v0")
        assert row_invariant_violations(stale)
        noisy = dataclasses.replace(
            self._clean_row(), detected_signals=("overload",), detection_latency_min=0
        )
        assert any("false positive" in v for v in row_invariant_violations(noisy))

    def test_grid_always_measures_against_a_control(self):
        # the clean control runs even when not requested: loss/throughput
        # of every attack row must reference it, not the attack cell itself
        cfg = tiny_config(campaigns=("faker",))
        (row,) = run_campaign_grid(cfg)
        assert row.campaign == "faker"
        assert row.throughput_ratio < 1.0
        assert row.control_honest_retained == row.honest_retained

    def test_campaign_list_is_closed(self):
        assert set(CAMPAIGNS) == {
            "clean", "faker", "poisoning", "collusion", "concentration",
            "kitchen_sink",
        }
