"""Tests for the Table 2 scenario catalogue."""

import pytest

from repro.analysis.scenarios import TABLE2_SCENARIOS, run_scenario


class TestCatalogue:
    def test_fourteen_scenarios(self):
        assert len(TABLE2_SCENARIOS) == 14

    def test_names_unique(self):
        names = [s.name for s in TABLE2_SCENARIOS]
        assert len(set(names)) == 14

    def test_conditions_match_paper_vocabulary(self):
        for s in TABLE2_SCENARIOS:
            assert s.condition in ("LOS", "NLOS", "LOS/NLOS")

    def test_environment_derivation(self):
        for s in TABLE2_SCENARIOS:
            env = s.environment()
            # p_blocked reproduced by the derived obstruction rate
            p_blocked = 1.0 - env.p_building_clear(s.distance_m)
            if s.p_blocked < 1.0:
                assert p_blocked == pytest.approx(s.p_blocked, abs=0.02)
            else:
                assert p_blocked > 0.99


class TestRunScenario:
    @pytest.mark.parametrize(
        "scenario", TABLE2_SCENARIOS, ids=[s.name for s in TABLE2_SCENARIOS]
    )
    def test_measured_close_to_paper(self, scenario):
        link, video = run_scenario(scenario, windows=80, seed=11)
        assert abs(link - scenario.paper_linkage) <= 18.0
        assert abs(video - scenario.paper_video) <= 18.0

    def test_video_never_exceeds_linkage_materially(self):
        # a VP link only requires radio; video needs sight as well
        for scenario in TABLE2_SCENARIOS:
            link, video = run_scenario(scenario, windows=60, seed=12)
            assert video <= link + 10.0
