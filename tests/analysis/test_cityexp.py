"""Tests for the city-scale experiment drivers (small configurations)."""

from repro.analysis.cityexp import city_viewmap_stats, contact_time_by_speed


class TestCityViewmapStats:
    def test_stats_structure(self):
        stats, vmap = city_viewmap_stats(
            50.0, n_vehicles=20, area_km=1.5, seed=1
        )
        assert stats.nodes >= 20            # actuals + guards
        assert stats.label == "50km/h"
        assert 0.0 <= stats.member_ratio <= 1.0
        assert vmap.node_count == stats.nodes

    def test_mix_label(self):
        stats, _ = city_viewmap_stats(
            None, mixed_speeds_kmh=(30.0, 70.0), n_vehicles=15, area_km=1.5, seed=2
        )
        assert stats.label == "Mix"


class TestContactTime:
    def test_speed_sweep(self):
        contact = contact_time_by_speed(
            [30.0, 70.0], n_vehicles=40, area_km=2.0, duration_s=120, seed=3
        )
        assert set(contact) == {"30km/h", "70km/h"}
        assert all(v > 0 for v in contact.values())

    def test_mix_key(self):
        contact = contact_time_by_speed(
            [None], n_vehicles=20, area_km=1.5, duration_s=60, seed=4
        )
        assert "Mix" in contact
