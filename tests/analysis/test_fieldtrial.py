"""Tests for the field-trial environment model."""

import numpy as np

from repro.analysis.fieldtrial import (
    ENVIRONMENTS,
    Environment,
    rssi_pdr_scatter,
    simulate_window,
    vlr_curve,
)


class TestEnvironment:
    def test_building_clear_probability(self):
        env = Environment("t", 1.0 / 100.0, 0.0, clear_distance_m=0.0)
        assert env.p_building_clear(0.0) == 1.0
        assert env.p_building_clear(100.0) < env.p_building_clear(50.0)

    def test_clear_distance_protects_close_range(self):
        env = Environment("t", 1.0 / 100.0, 0.0, clear_distance_m=50.0)
        assert env.p_building_clear(40.0) == 1.0


class TestSimulateWindow:
    def test_open_road_always_links(self):
        env = ENVIRONMENTS["open_road"]
        outcomes = [simulate_window(env, 300.0, seed=s) for s in range(20)]
        assert all(o.linked for o in outcomes)

    def test_deterministic_under_seed(self):
        env = ENVIRONMENTS["downtown"]
        a = simulate_window(env, 200.0, seed=9)
        b = simulate_window(env, 200.0, seed=9)
        assert (a.linked, a.on_video, a.mean_rssi_dbm) == (
            b.linked,
            b.on_video,
            b.mean_rssi_dbm,
        )

    def test_video_implies_capture_range(self):
        # on_video at 400 m sometimes true, never past blockage
        env = Environment("solid", 1.0, 0.0, clear_distance_m=0.0)
        outcomes = [simulate_window(env, 300.0, seed=s) for s in range(10)]
        assert not any(o.on_video for o in outcomes)


class TestVlrCurve:
    def test_open_road_flat_at_one(self):
        curve = vlr_curve(ENVIRONMENTS["open_road"], [100, 250, 400], windows=10, seed=1)
        assert all(v == 1.0 for v in curve)

    def test_downtown_decreases_with_distance(self):
        curve = vlr_curve(
            ENVIRONMENTS["downtown"], [50, 200, 400], windows=40, seed=2
        )
        assert curve[0] > curve[2]

    def test_heavy_traffic_below_light(self):
        from repro.analysis.fieldtrial import HIGHWAY_CONDITIONS

        light = HIGHWAY_CONDITIONS[0][2]
        heavy = HIGHWAY_CONDITIONS[2][2]
        light_curve = vlr_curve(light, [300, 400], windows=40, seed=3)
        heavy_curve = vlr_curve(heavy, [300, 400], windows=40, seed=3)
        assert np.mean(heavy_curve) < np.mean(light_curve)


class TestScatter:
    def test_scatter_spans_rssi_range(self):
        pairs = rssi_pdr_scatter([100, 200, 300, 400], samples_per_distance=10, seed=4)
        rssi = [r for r, _ in pairs]
        assert min(rssi) < -90.0
        assert max(rssi) > -80.0

    def test_high_rssi_high_pdr(self):
        pairs = rssi_pdr_scatter([50, 400], samples_per_distance=30, seed=5)
        strong = [p for r, p in pairs if r > -75]
        weak = [p for r, p in pairs if r < -105]
        if strong and weak:
            assert np.mean(strong) > np.mean(weak)
