"""Tests for VP volume analysis."""

from repro.analysis.volume import coverage_vs_alpha, simulated_vp_volume, vp_volume_curve


class TestAnalyticCurve:
    def test_base_case(self):
        assert vp_volume_curve(0.1, [0]) == [1.0]

    def test_alpha_increases_volume(self):
        low = vp_volume_curve(0.1, [100])
        high = vp_volume_curve(0.9, [100])
        assert high[0] > low[0]

    def test_ceil_behaviour(self):
        # ceil(0.1 * 5) = 1, ceil(0.1 * 11) = 2
        assert vp_volume_curve(0.1, [5, 11]) == [2.0, 3.0]

    def test_monotone_in_neighbors(self):
        curve = vp_volume_curve(0.5, [10, 50, 100, 200])
        assert curve == sorted(curve)


class TestSimulatedVolume:
    def test_volume_tracks_alpha(self):
        m_low, v_low = simulated_vp_volume(0.1, n_vehicles=20, area_km=1.5, minutes=2, seed=3)
        m_high, v_high = simulated_vp_volume(0.9, n_vehicles=20, area_km=1.5, minutes=2, seed=3)
        assert v_high > v_low >= 1.0
        assert m_low > 0  # vehicles do meet each other


class TestCoverage:
    def test_alpha_sweep(self):
        cov = coverage_vs_alpha([0.05, 0.1, 0.5], m=50, t_minutes=5)
        assert cov[0.5] < cov[0.1] < cov[0.05]
