"""Tests for the Table 1 blur experiment driver."""

from repro.analysis.blurexp import measure_host_timing, table1_rows


class TestMeasureHost:
    def test_positive_stage_times(self):
        timing = measure_host_timing(frames=3, seed=1)
        assert timing.blur_s > 0
        assert timing.capture_io_s > 0
        assert timing.write_io_s > 0


class TestTable1Rows:
    def test_three_rows(self):
        rows = table1_rows(frames=3, seed=2)
        assert len(rows) == 3

    def test_anchored_rows_reproduce_paper_stage_times(self):
        rows = table1_rows(frames=3, seed=3, anchor_to_paper=True)
        for row in rows:
            assert abs(row.blur_ms - row.paper_blur_ms) < 0.5
            assert abs(row.io_ms - row.paper_io_ms) < 0.5

    def test_fps_ordering_matches_paper(self):
        rows = table1_rows(frames=3, seed=4)
        assert rows[0].fps < rows[1].fps < rows[2].fps

    def test_pi_clears_10fps(self):
        rows = table1_rows(frames=3, seed=5)
        pi = rows[0]
        assert pi.fps >= 9.5  # the paper's realtime usability threshold
