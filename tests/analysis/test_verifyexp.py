"""Tests for the verification sweep drivers (small configurations)."""

from repro.analysis.verifyexp import fig12_grid, fig13_grid
from tests.attacks.test_collusion import SMALL


class TestFig12Grid:
    def test_grid_shape(self):
        grid = fig12_grid(
            runs=2, hop_bands=[(1, 3)], fake_ratios=[0.5], config=SMALL, seed=1
        )
        assert (1, 3) in grid
        assert 0.5 in grid[(1, 3)]
        assert 0.0 <= grid[(1, 3)][0.5] <= 1.0


class TestFig13Grid:
    def test_grid_shape(self):
        grid = fig13_grid(
            runs=2, dummy_counts=[10], fake_ratios=[0.5], config=SMALL, seed=2
        )
        assert 10 in grid
        assert 0.0 <= grid[10][0.5] <= 1.0
