"""Tests for the Fig. 8 hashing experiment driver."""

from repro.analysis.hashexp import hash_time_series


class TestHashTimeSeries:
    def test_series_lengths(self):
        series = hash_time_series(bytes_per_second=100_000, seconds=10, repeats=1)
        assert len(series.seconds) == 10
        assert len(series.cascaded_s) == 10
        assert len(series.normal_s) == 10

    def test_cascaded_stays_constant(self):
        series = hash_time_series(bytes_per_second=400_000, seconds=30, repeats=2)
        # worst second no more than a few times the first second
        assert series.cascaded_worst() < 10 * max(series.cascaded_s[0], 1e-7)

    def test_normal_grows_linearly(self):
        series = hash_time_series(bytes_per_second=400_000, seconds=30, repeats=2)
        early = sum(series.normal_s[:5])
        late = sum(series.normal_s[-5:])
        assert late > 3 * early

    def test_normal_slower_than_cascaded_at_end(self):
        series = hash_time_series(bytes_per_second=400_000, seconds=30, repeats=1)
        assert series.normal_at_end() > series.cascaded_s[-1]

    def test_host_scale_applied(self):
        base = hash_time_series(bytes_per_second=100_000, seconds=5, repeats=1)
        scaled = hash_time_series(
            bytes_per_second=100_000, seconds=5, repeats=1, host_scale=10.0
        )
        # both measured independently; scaled values should be larger on
        # the same order (loose check: averages differ by > 2x)
        assert sum(scaled.normal_s) > 2 * sum(base.normal_s)
