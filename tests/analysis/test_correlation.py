"""Tests for Pearson correlation analysis."""

import pytest

from repro.analysis.correlation import link_video_correlation, pearson
from repro.analysis.fieldtrial import ENVIRONMENTS


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson([1], [1, 2])

    def test_short_series_zero(self):
        assert pearson([1], [1]) == 0.0

    def test_independent_series_near_zero(self):
        import random

        rng = random.Random(1)
        xs = [rng.random() for _ in range(500)]
        ys = [rng.random() for _ in range(500)]
        assert abs(pearson(xs, ys)) < 0.15


class TestLinkVideoCorrelation:
    def test_blockage_environments_show_association(self):
        corr = link_video_correlation(
            [ENVIRONMENTS["downtown"], ENVIRONMENTS["residential"]],
            [200.0, 400.0],
            windows=40,
            seed=1,
        )
        # VP links and video visibility share the LOS cause
        assert corr[200.0] > 0.4
        assert corr[400.0] > 0.4
