"""Tests for the networked server/client pair."""

import pytest

from repro.core.system import ViewMapSystem
from repro.core.vehicle import VehicleAgent
from repro.geo.geometry import Point
from repro.net.client import VehicleClient
from repro.net.onion import OnionNetwork
from repro.net.server import ViewMapServer
from repro.net.transport import InMemoryNetwork
from tests.conftest import run_linked_minute


@pytest.fixture
def stack():
    net = InMemoryNetwork()
    onion = OnionNetwork(network=net, n_relays=4, hops=2, seed=5)
    system = ViewMapSystem(key_bits=512, seed=6)
    server = ViewMapServer(system=system, network=net)
    return net, onion, system, server


@pytest.fixture
def driven_clients(stack):
    net, onion, system, server = stack
    police = VehicleAgent(vehicle_id=100, seed=1)
    civ = VehicleAgent(vehicle_id=1, seed=2)
    res_pol, res_civ = run_linked_minute(police, civ)
    system.ingest_trusted_vp(res_pol.actual_vp)
    client = VehicleClient(agent=civ, onion=onion)
    client.queue_minute_output(res_civ.actual_vp, res_civ.guard_vps)
    return stack, client, res_civ


class TestUpload:
    def test_upload_pending(self, driven_clients):
        (net, onion, system, server), client, res_civ = driven_clients
        n = client.upload_pending()
        assert n == 1 + len(res_civ.guard_vps)
        assert res_civ.actual_vp.vp_id in system.database
        assert client.pending_vps == []

    def test_duplicate_upload_not_double_counted(self, driven_clients):
        _, client, res_civ = driven_clients
        client.upload_pending()
        client.queue_minute_output(res_civ.actual_vp, [])
        assert client.upload_pending() == 0  # server answered duplicate


class TestSolicitationFlow:
    def run_investigation(self, driven_clients):
        (net, onion, system, server), client, res_civ = driven_clients
        client.upload_pending()
        system.investigate(Point(300, 25), minute=0, site_radius_m=1000)
        return system, client, res_civ

    def test_check_solicitations_matches_archive(self, driven_clients):
        system, client, res_civ = self.run_investigation(driven_clients)
        matched = client.check_solicitations()
        assert matched == [res_civ.actual_vp.vp_id]

    def test_video_upload_and_reward(self, driven_clients):
        system, client, res_civ = self.run_investigation(driven_clients)
        assert client.upload_solicited_videos() == 1
        system.human_review(res_civ.actual_vp.vp_id)
        minted = client.claim_rewards()
        assert minted == system.reward_units
        for unit in client.cash:
            system.registry.redeem(unit)
        assert system.registry.redeemed == minted

    def test_sessions_unlinkable(self, driven_clients):
        (net, onion, system, server), client, res_civ = driven_clients
        client.upload_pending()
        sessions = [s for _, s in server.session_log if s]
        assert len(set(sessions)) == len(sessions)  # never reused

    def test_server_never_sees_client_address(self, driven_clients):
        (net, onion, system, server), client, _ = driven_clients
        client.upload_pending()
        sources = {src for src, dst, _ in net.delivery_log if dst == server.address}
        assert "client" not in sources
        assert all(src.startswith("relay-") for src in sources)

    def test_public_key_fetch(self, driven_clients):
        (net, onion, system, server), client, _ = driven_clients
        public = client.fetch_public_key()
        assert public.n == system.rewards.public_key.n
        assert public.e == system.rewards.public_key.e
