"""Tests for the onion-routing stand-in."""

import pytest

from repro.errors import NetworkError
from repro.net.onion import OnionNetwork, _keystream_xor
from repro.net.transport import InMemoryNetwork


@pytest.fixture
def onion_net():
    net = InMemoryNetwork()
    received = []

    def server(payload: bytes) -> bytes:
        received.append(payload)
        return b"reply:" + payload

    net.register("server", server)
    return net, OnionNetwork(network=net, n_relays=5, hops=3, seed=1), received


class TestKeystream:
    def test_xor_involution(self):
        key, nonce = b"k" * 32, b"n" * 16
        data = b"some payload bytes" * 10
        assert _keystream_xor(key, nonce, _keystream_xor(key, nonce, data)) == data

    def test_different_keys_differ(self):
        nonce = b"n" * 16
        a = _keystream_xor(b"a" * 32, nonce, b"data")
        b = _keystream_xor(b"b" * 32, nonce, b"data")
        assert a != b


class TestOnionNetwork:
    def test_payload_reaches_destination_intact(self, onion_net):
        _, onion, received = onion_net
        reply = onion.anonymous_send("server", b"hello world")
        assert received == [b"hello world"]
        assert reply == b"reply:hello world"

    def test_server_sees_exit_relay_not_client(self, onion_net):
        net, onion, _ = onion_net
        circuit = onion.build_circuit()
        onion.anonymous_send("server", b"x", circuit)
        to_server = [src for src, dst, _ in net.delivery_log if dst == "server"]
        assert to_server == [circuit.relays[-1].address]

    def test_entry_relay_never_sees_plaintext(self, onion_net):
        net, onion, _ = onion_net
        secret = b"very secret payload that must stay hidden"
        onion.anonymous_send("server", secret)
        # capture what flowed into the first hop: sizes only in log, so
        # re-send with instrumentation
        circuit = onion.build_circuit()
        wrapped = circuit.wrap("server", secret)
        assert secret not in wrapped

    def test_sessions_rotate_per_circuit(self, onion_net):
        _, onion, _ = onion_net
        sessions = {onion.build_circuit().session_id for _ in range(20)}
        assert len(sessions) == 20

    def test_circuit_paths_vary(self, onion_net):
        _, onion, _ = onion_net
        paths = {
            tuple(r.address for r in onion.build_circuit().relays) for _ in range(20)
        }
        assert len(paths) > 1

    def test_too_long_circuit_rejected(self):
        net = InMemoryNetwork()
        with pytest.raises(NetworkError):
            OnionNetwork(network=net, n_relays=2, hops=3)

    def test_reply_unwraps_through_all_layers(self, onion_net):
        _, onion, _ = onion_net
        for _ in range(5):
            assert onion.anonymous_send("server", b"ping") == b"reply:ping"
