"""Security-oriented tests of the onion transport's observer guarantees."""

import pytest

from repro.net.onion import OnionNetwork, _frame, _unframe
from repro.net.transport import InMemoryNetwork
from repro.errors import NetworkError


@pytest.fixture
def instrumented():
    net = InMemoryNetwork()
    seen = {}

    def server(payload: bytes) -> bytes:
        seen["payload"] = payload
        return b"ok"

    net.register("server", server)
    onion = OnionNetwork(network=net, n_relays=5, hops=3, seed=4)
    return net, onion, seen


class TestFraming:
    def test_frame_unframe_roundtrip(self):
        parts = [b"", b"a", b"longer part" * 10]
        assert _unframe(_frame(*parts), len(parts)) == parts

    def test_truncated_frame_rejected(self):
        framed = _frame(b"hello")
        with pytest.raises(NetworkError):
            _unframe(framed[:-2], 1)
        with pytest.raises(NetworkError):
            _unframe(b"\x00\x00", 1)


class TestObserverView:
    def test_backbone_sees_no_plaintext_before_exit(self, instrumented):
        net, onion, seen = instrumented
        secret = b"location trail of vehicle 42"
        circuit = onion.build_circuit()
        wrapped = circuit.wrap("server", secret)
        # every intermediate representation hides the payload
        assert secret not in wrapped
        onion.anonymous_send("server", secret, circuit)
        assert seen["payload"] == secret  # exit delivers intact

    def test_each_hop_strips_exactly_one_layer(self, instrumented):
        net, onion, _ = instrumented
        circuit = onion.build_circuit()
        wrapped = circuit.wrap("server", b"payload")
        # the wrapped message names only the first relay in the clear
        body = wrapped
        for relay in circuit.relays[:-1]:
            # after the relay processes, the next relay's address appears
            # in its decrypted view — verified indirectly by delivery
            pass
        reply = onion.network.send("client", circuit.relays[0].address, wrapped)
        assert circuit.unwrap_reply(reply) == b"ok"

    def test_log_shows_relay_chain_only(self, instrumented):
        net, onion, _ = instrumented
        circuit = onion.build_circuit()
        net.delivery_log.clear()
        onion.anonymous_send("server", b"x", circuit)
        hops = [(src, dst) for src, dst, _ in net.delivery_log]
        expected = ["client"] + [r.address for r in circuit.relays]
        assert [src for src, _ in hops] == expected[: len(hops)]
        assert hops[-1][1] == "server"

    def test_distinct_circuits_encrypt_differently(self, instrumented):
        _, onion, _ = instrumented
        c1, c2 = onion.build_circuit(), onion.build_circuit()
        assert c1.wrap("server", b"same") != c2.wrap("server", b"same")
