"""Tests for the worker-pool fabric and the concurrent server front-end."""

import threading

import pytest

from repro.core.system import ViewMapSystem
from repro.core.vehicle import VehicleAgent
from repro.errors import NetworkError
from repro.net.client import VehicleClient
from repro.net.concurrency import ConcurrentViewMapServer, ThreadedNetwork
from repro.net.messages import decode_message, encode_message, pack_vp_batch
from repro.net.onion import OnionNetwork
from repro.store import ShardedStore
from tests.conftest import run_linked_minute


class TestThreadedNetworkContract:
    """The serial fabric's contract holds on the worker-pool fabric."""

    def test_request_response(self):
        with ThreadedNetwork(workers=2) as net:
            net.register("echo", lambda payload: payload.upper())
            assert net.send("client", "echo", b"hello") == b"HELLO"

    def test_unknown_destination_raises(self):
        with ThreadedNetwork(workers=2) as net:
            with pytest.raises(NetworkError):
                net.send("client", "nowhere", b"x")

    def test_unknown_destination_raises_through_future(self):
        with ThreadedNetwork(workers=2) as net:
            future = net.send_async("client", "nowhere", b"x")
            with pytest.raises(NetworkError):
                future.result()

    def test_duplicate_registration_rejected(self):
        with ThreadedNetwork(workers=1) as net:
            net.register("svc", lambda p: p)
            with pytest.raises(NetworkError):
                net.register("svc", lambda p: p)

    def test_unregister(self):
        with ThreadedNetwork(workers=1) as net:
            net.register("svc", lambda p: p)
            net.unregister("svc")
            with pytest.raises(NetworkError):
                net.send("c", "svc", b"x")

    def test_delivery_log_records_metadata_only(self):
        with ThreadedNetwork(workers=1) as net:
            net.register("svc", lambda p: b"")
            net.send("alice", "svc", b"12345")
            assert net.delivery_log == [("alice", "svc", 5)]

    def test_addresses_sorted(self):
        with ThreadedNetwork(workers=1) as net:
            net.register("b", lambda p: p)
            net.register("a", lambda p: p)
            assert net.addresses() == ["a", "b"]

    def test_send_after_close_raises(self):
        net = ThreadedNetwork(workers=1)
        net.register("svc", lambda p: p)
        net.close()
        with pytest.raises(NetworkError):
            net.send("c", "svc", b"x")

    def test_zero_workers_rejected(self):
        with pytest.raises(NetworkError):
            ThreadedNetwork(workers=0)


class TestThreadedNetworkConcurrency:
    def test_nested_send_runs_inline_on_one_worker(self):
        # with a single worker, a relay-style handler forwarding to a
        # second endpoint would deadlock unless nested sends run inline
        with ThreadedNetwork(workers=1) as net:
            net.register("inner", lambda p: p + b"!")
            net.register("outer", lambda p: net.send("outer", "inner", p))
            assert net.send("client", "outer", b"hop") == b"hop!"

    def test_requests_overlap_up_to_worker_count(self):
        # both requests must be inside the handler at once to pass the
        # barrier; a serial fabric would time out
        barrier = threading.Barrier(2, timeout=5.0)

        def handler(payload: bytes) -> bytes:
            barrier.wait()
            return payload

        with ThreadedNetwork(workers=2) as net:
            net.register("svc", handler)
            futures = [net.send_async("c", "svc", b"x") for _ in range(2)]
            assert [f.result(timeout=5.0) for f in futures] == [b"x", b"x"]

    def test_many_async_requests_from_many_threads(self):
        with ThreadedNetwork(workers=4) as net:
            net.register("double", lambda p: p * 2)
            results: dict[int, bytes] = {}

            def client(i: int) -> None:
                results[i] = net.send("c", "double", bytes([i]))

            threads = [threading.Thread(target=client, args=(i,)) for i in range(16)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert results == {i: bytes([i, i]) for i in range(16)}
            assert len(net.delivery_log) == 16


@pytest.fixture
def concurrent_stack():
    net = ThreadedNetwork(workers=4)
    onion = OnionNetwork(network=net, n_relays=4, hops=2, seed=5)
    system = ViewMapSystem(key_bits=512, seed=6, store=ShardedStore.memory(n_shards=2))
    server = ConcurrentViewMapServer(system=system, network=net)
    yield net, onion, system, server
    net.close()
    system.close()


class TestConcurrentViewMapServer:
    def test_full_stack_batch_upload_over_onion(self, concurrent_stack):
        net, onion, system, server = concurrent_stack
        a = VehicleAgent(vehicle_id=1, seed=2)
        b = VehicleAgent(vehicle_id=2, seed=3)
        res_a, _ = run_linked_minute(a, b)
        client = VehicleClient(agent=a, onion=onion)
        client.queue_minute_output(res_a.actual_vp, res_a.guard_vps)
        staged = len(client.pending_vps)
        assert client.upload_pending_batch() == staged
        assert len(system.database) == staged
        assert res_a.actual_vp.vp_id in system.database

    def test_registry_still_covers_exactly_the_protocol(self, concurrent_stack):
        net, onion, system, server = concurrent_stack
        assert set(server._handlers) == {
            "upload_vp",
            "upload_vp_batch",
            "query_view",
            "list_solicitations",
            "upload_video",
            "list_rewards",
            "claim_reward",
            "sign_blinded",
            "public_key",
        }

    def test_unknown_kind_is_closed_world(self, concurrent_stack):
        net, onion, system, server = concurrent_stack
        reply = decode_message(server.handle(encode_message("reboot", session="x")))
        assert reply["kind"] == "error"
        assert "unknown kind" in reply["reason"]

    def test_session_log_complete_under_parallel_requests(self, concurrent_stack):
        net, onion, system, server = concurrent_stack
        payload = encode_message("list_solicitations", session="s")
        futures = [
            net.send_async("c", server.address, payload) for _ in range(24)
        ]
        for f in futures:
            assert decode_message(f.result(timeout=10.0))["kind"] == "solicitations"
        kinds = [k for k, _ in server.session_log]
        assert kinds.count("list_solicitations") == 24

    def test_parallel_duplicate_batches_store_exactly_once(self, concurrent_stack):
        net, onion, system, server = concurrent_stack
        a = VehicleAgent(vehicle_id=5, seed=7)
        b = VehicleAgent(vehicle_id=6, seed=8)
        res_a, _ = run_linked_minute(a, b)
        vps = [res_a.actual_vp] + res_a.guard_vps
        payload = encode_message(
            "upload_vp_batch", session="s", vps=pack_vp_batch(vps)
        )
        futures = [net.send_async("c", server.address, payload) for _ in range(8)]
        replies = [decode_message(f.result(timeout=10.0)) for f in futures]
        assert all(r["kind"] == "batch_ack" for r in replies)
        # the store keeps exactly one copy however the races resolve
        assert len(system.database) == len(vps)
        assert sum(r["inserted"] for r in replies) == len(vps)
