"""Tests for the in-memory transport."""

import pytest

from repro.errors import NetworkError
from repro.net.transport import InMemoryNetwork


class TestInMemoryNetwork:
    def test_request_response(self):
        net = InMemoryNetwork()
        net.register("echo", lambda payload: payload.upper())
        assert net.send("client", "echo", b"hello") == b"HELLO"

    def test_unknown_destination_raises(self):
        net = InMemoryNetwork()
        with pytest.raises(NetworkError):
            net.send("client", "nowhere", b"x")

    def test_duplicate_registration_rejected(self):
        net = InMemoryNetwork()
        net.register("svc", lambda p: p)
        with pytest.raises(NetworkError):
            net.register("svc", lambda p: p)

    def test_unregister(self):
        net = InMemoryNetwork()
        net.register("svc", lambda p: p)
        net.unregister("svc")
        with pytest.raises(NetworkError):
            net.send("c", "svc", b"x")

    def test_delivery_log_records_metadata_only(self):
        net = InMemoryNetwork()
        net.register("svc", lambda p: b"")
        net.send("alice", "svc", b"12345")
        assert net.delivery_log == [("alice", "svc", 5)]

    def test_addresses_sorted(self):
        net = InMemoryNetwork()
        net.register("b", lambda p: p)
        net.register("a", lambda p: p)
        assert net.addresses() == ["a", "b"]
