"""Streaming ingest front-end: parser state machine, transport, hardening.

Three layers are pinned here:

* :class:`~repro.net.messages.FrameParser` — the incremental wire state
  machine: records re-assemble identically whatever the chunking, every
  protocol violation (bad magic, unknown kind, oversized declared
  length) is a clean :class:`ValidationError` raised *before* the
  payload arrives, and emitted payload views stay valid after later
  feeds (each record owns its buffer).
* :class:`~repro.net.streaming.StreamingNetwork` — in-memory modeled
  connections: acks match the threaded path, duplicates are rejected
  across requests, malformed frames never partially ingest, control
  messages and the ``send`` fabric contract work over the same socket.
* hardening — slow-loris peers and over-cap backlogs are shed with a
  clean error reply plus a ``server.upload.shed`` count, and the tier-1
  TCP smoke test proves a real socket leaves byte-identical store
  contents versus the threaded buffer-whole transport.
"""

from __future__ import annotations

import socket

import pytest

from repro.core.system import ViewMapSystem
from repro.errors import NetworkError, ValidationError
from repro.net.concurrency import ConcurrentViewMapServer, ThreadedNetwork
from repro.net.messages import (
    STREAM_KIND_FRAME,
    STREAM_KIND_MSG,
    STREAM_MAGIC,
    FrameParser,
    decode_message,
    encode_message,
    pack_stream_record,
    pack_vp_batch_frame,
    peek_frame_minute,
)
from repro.net.streaming import StreamingNetwork
from repro.obs.metrics import counter_value
from tests.net.test_wire_frame import make_complete_vp, store_contents


@pytest.fixture(scope="module")
def vp_pool():
    return [make_complete_vp(seed) for seed in range(1, 5)]


# ---------------------------------------------------------------------------
# FrameParser: the incremental wire state machine
# ---------------------------------------------------------------------------


class TestFrameParser:
    def stream(self, *records: tuple[int, bytes]) -> bytes:
        return STREAM_MAGIC + b"".join(pack_stream_record(k, p) for k, p in records)

    def test_byte_at_a_time_reassembly(self):
        wire = self.stream(
            (STREAM_KIND_MSG, b"hello"), (STREAM_KIND_FRAME, bytes(range(100)))
        )
        parser = FrameParser()
        records = []
        for i in range(len(wire)):
            records.extend(parser.feed(wire[i : i + 1]))
        assert [(k, bytes(p)) for k, p in records] == [
            (STREAM_KIND_MSG, b"hello"),
            (STREAM_KIND_FRAME, bytes(range(100))),
        ]
        assert parser.pending_bytes == 0
        assert not parser.mid_record

    def test_single_chunk_multi_record(self):
        wire = self.stream((STREAM_KIND_MSG, b"a"), (STREAM_KIND_MSG, b"bb"))
        records = FrameParser().feed(wire)
        assert [bytes(p) for _, p in records] == [b"a", b"bb"]

    def test_payloads_are_readonly_views(self):
        [(_, payload)] = FrameParser().feed(self.stream((STREAM_KIND_FRAME, b"body")))
        assert isinstance(payload, memoryview)
        assert payload.readonly

    def test_payload_views_survive_later_feeds(self):
        # each record owns its buffer: a span handed to the store (or a
        # worker pipe) must not be clobbered by the next record
        parser = FrameParser()
        [(_, first)] = parser.feed(self.stream((STREAM_KIND_FRAME, b"first-body")))
        parser.feed(pack_stream_record(STREAM_KIND_FRAME, b"X" * 64))
        assert bytes(first) == b"first-body"

    def test_zero_length_payload(self):
        [(kind, payload)] = FrameParser().feed(self.stream((STREAM_KIND_MSG, b"")))
        assert kind == STREAM_KIND_MSG
        assert bytes(payload) == b""

    def test_bad_magic_rejected(self):
        with pytest.raises(ValidationError, match="magic"):
            FrameParser().feed(b"XVMS" + b"\x01\x00\x00\x00\x00")

    def test_unknown_kind_rejected(self):
        wire = STREAM_MAGIC + bytes([0x7F]) + (0).to_bytes(4, "big")
        with pytest.raises(ValidationError, match="unknown stream record kind"):
            FrameParser().feed(wire)

    def test_oversized_length_rejected_before_payload(self):
        # the header alone is enough to refuse: no buffer is allocated,
        # no payload byte need ever arrive
        parser = FrameParser(max_payload_bytes=1024)
        header = bytes([STREAM_KIND_FRAME]) + (1025).to_bytes(4, "big")
        with pytest.raises(ValidationError, match="bound"):
            parser.feed(STREAM_MAGIC + header)

    def test_mid_record_and_pending_bytes_tracking(self):
        parser = FrameParser()
        parser.feed(STREAM_MAGIC)
        assert not parser.mid_record
        parser.feed(pack_stream_record(STREAM_KIND_FRAME, b"0123456789")[:9])
        assert parser.mid_record
        assert parser.pending_bytes == 4  # 4 of 10 payload bytes buffered
        parser.feed(b"456789")
        assert not parser.mid_record
        assert parser.pending_bytes == 0


class TestPeekFrameMinute:
    def test_reads_first_record_minute(self, vp_pool):
        frame = pack_vp_batch_frame([vp_pool[1]])
        assert peek_frame_minute(frame) == vp_pool[1].minute
        assert peek_frame_minute(memoryview(frame)) == vp_pool[1].minute

    def test_short_frame_defaults_to_zero(self):
        assert peek_frame_minute(b"\x01\x00\x00") == 0


# ---------------------------------------------------------------------------
# StreamingNetwork: modeled in-memory connections
# ---------------------------------------------------------------------------


def threaded_contents(vp_pool, frames: list[bytes]) -> dict:
    """Store contents after uploading ``frames`` via the threaded path."""
    with ViewMapSystem(key_bits=512, seed=3) as system:
        with ThreadedNetwork(workers=2) as net:
            server = ConcurrentViewMapServer(system=system, network=net)
            for frame in frames:
                reply = decode_message(
                    net.send(
                        "vehicle",
                        server.address,
                        encode_message("upload_vp_batch", session="s", frame=frame),
                    )
                )
                assert reply["kind"] == "batch_ack"
            return store_contents(system)


class TestStreamingTransport:
    @pytest.fixture
    def stack(self):
        with ViewMapSystem(key_bits=512, seed=3) as system:
            with StreamingNetwork(workers=2) as net:
                server = ConcurrentViewMapServer(system=system, network=net)
                yield system, net, server

    def test_upload_ack_and_byte_identical_store(self, stack, vp_pool):
        system, net, server = stack
        frame = pack_vp_batch_frame(vp_pool[:3])
        conn = net.connect(server.address)
        reply = conn.upload_frame(frame)
        assert reply["kind"] == "batch_ack"
        assert reply["accepted"] == [True, True, True]
        assert reply["inserted"] == 3
        assert store_contents(system) == threaded_contents(vp_pool, [frame])

    def test_duplicates_rejected_across_requests(self, stack, vp_pool):
        system, net, server = stack
        frame = pack_vp_batch_frame([vp_pool[0]])
        conn = net.connect(server.address)
        assert conn.upload_frame(frame)["inserted"] == 1
        dup = conn.upload_frame(frame)
        assert dup["accepted"] == [False]
        assert dup["inserted"] == 0

    def test_pipelined_uploads_resolve_in_order(self, stack, vp_pool):
        system, net, server = stack
        conn = net.connect(server.address)
        futures = [
            conn.upload_frame_async(pack_vp_batch_frame([vp])) for vp in vp_pool
        ]
        replies = [decode_message(f.result(30.0)) for f in futures]
        assert all(r["kind"] == "batch_ack" and r["inserted"] == 1 for r in replies)
        assert len(system.database) == len(vp_pool)

    def test_malformed_frame_rejected_whole(self, stack, vp_pool):
        system, net, server = stack
        frame = pack_vp_batch_frame(vp_pool[:2])
        conn = net.connect(server.address)
        reply = conn.upload_frame(frame[: len(frame) // 2])
        assert reply["kind"] == "error"
        assert len(system.database) == 0, "partial ingest on a rejected frame"

    def test_control_message_roundtrip(self, stack):
        _, net, server = stack
        conn = net.connect(server.address)
        reply = conn.request("list_solicitations", session="s")
        assert reply["kind"] == "solicitations"

    def test_send_contract_compat(self, stack):
        # serial-fabric callers (privacy probes) work unchanged
        _, net, server = stack
        reply = decode_message(
            net.send(
                "probe",
                server.address,
                encode_message("list_solicitations", session="s"),
            )
        )
        assert reply["kind"] == "solicitations"

    def test_connect_unknown_address(self, stack):
        _, net, _ = stack
        with pytest.raises(NetworkError, match="no endpoint"):
            net.connect("nowhere")

    def test_close_fails_pending_uploads(self, stack, vp_pool):
        _, net, server = stack
        conn = net.connect(server.address)
        conn.close()
        with pytest.raises(NetworkError):
            conn.upload_frame(pack_vp_batch_frame([vp_pool[0]]))


# ---------------------------------------------------------------------------
# Hardening: slow-loris deadlines, backlog caps
# ---------------------------------------------------------------------------


def drain_records(sock: socket.socket, parser: FrameParser, timeout: float = 10.0):
    """Read until EOF (or timeout), returning every parsed record."""
    sock.settimeout(timeout)
    records = []
    try:
        while True:
            data = sock.recv(65536)
            if not data:
                break
            records.extend(parser.feed(data))
    except TimeoutError:
        pass
    return records


class TestHardening:
    def test_slow_loris_connection_is_shed(self, vp_pool):
        # a peer that starts a record and stalls is disconnected with a
        # clean error once the read deadline lapses — satellite of the
        # untrusted-bytes front door
        with ViewMapSystem(key_bits=512, seed=3) as system:
            with StreamingNetwork(workers=1, read_deadline_s=0.05) as net:
                server = ConcurrentViewMapServer(system=system, network=net)
                host, port = net.listen(server.address)
                with socket.create_connection((host, port), timeout=10.0) as sock:
                    sock.sendall(STREAM_MAGIC)
                    # three header bytes, then silence: mid-record forever
                    sock.sendall(pack_stream_record(STREAM_KIND_MSG, b"x")[:3])
                    records = drain_records(sock, FrameParser())
                assert records, "expected an error reply before the hang-up"
                reply = decode_message(bytes(records[-1][1]))
                assert reply["kind"] == "error"
                assert "read deadline" in reply["reason"]
                snap = net.metrics.snapshot()
                assert counter_value(snap, "server.upload.shed") >= 1
                assert len(system.database) == 0

    def test_backlog_over_cap_is_shed(self, vp_pool):
        # one VP record (~4.6 KiB) blows a 1 KiB pending-bytes bound:
        # the connection is refused before any ingest work happens
        with ViewMapSystem(key_bits=512, seed=3) as system:
            with StreamingNetwork(workers=1, max_pending_bytes=1024) as net:
                server = ConcurrentViewMapServer(system=system, network=net)
                conn = net.connect(server.address)
                reply = conn.upload_frame(pack_vp_batch_frame([vp_pool[0]]))
                assert reply["kind"] == "error"
                assert "max-pending" in reply["reason"]
                assert counter_value(net.metrics.snapshot(), "server.upload.shed") == 1
                assert len(system.database) == 0

    def test_tcp_bad_magic_is_shed(self):
        with ViewMapSystem(key_bits=512, seed=3) as system:
            with StreamingNetwork(workers=1) as net:
                server = ConcurrentViewMapServer(system=system, network=net)
                host, port = net.listen(server.address)
                with socket.create_connection((host, port), timeout=10.0) as sock:
                    sock.sendall(b"HTTP/1.1 GET /")
                    records = drain_records(sock, FrameParser())
                assert records
                reply = decode_message(bytes(records[-1][1]))
                assert reply["kind"] == "error"
                assert "magic" in reply["reason"]
                assert counter_value(net.metrics.snapshot(), "server.upload.shed") == 1


# ---------------------------------------------------------------------------
# Tier-1 smoke: real TCP, one frame, byte-identical store vs threaded
# ---------------------------------------------------------------------------


class TestTCPSmoke:
    def test_stream_one_frame_over_tcp_matches_threaded(self, vp_pool):
        frame = pack_vp_batch_frame(vp_pool[:2])
        with ViewMapSystem(key_bits=512, seed=3) as system:
            with StreamingNetwork(workers=2) as net:
                server = ConcurrentViewMapServer(system=system, network=net)
                host, port = net.listen(server.address)
                parser = FrameParser()
                with socket.create_connection((host, port), timeout=10.0) as sock:
                    sock.settimeout(10.0)
                    sock.sendall(STREAM_MAGIC)
                    sock.sendall(pack_stream_record(STREAM_KIND_FRAME, frame))
                    records = []
                    while not records:
                        data = sock.recv(65536)
                        assert data, "server hung up before replying"
                        records.extend(parser.feed(data))
                reply = decode_message(bytes(records[0][1]))
                assert reply["kind"] == "batch_ack"
                assert reply["inserted"] == 2
                streamed = store_contents(system)
        assert streamed == threaded_contents(vp_pool, [frame])

    def test_streamed_frames_logged_without_session(self, vp_pool):
        # privacy probes read the session log: streamed frames carry no
        # session id and land under their own kind
        with ViewMapSystem(key_bits=512, seed=3) as system:
            with StreamingNetwork(workers=1) as net:
                server = ConcurrentViewMapServer(system=system, network=net)
                conn = net.connect(server.address)
                conn.upload_frame(pack_vp_batch_frame([vp_pool[0]]))
                assert ("upload_stream", "") in server.session_log
