"""Streaming-vs-threaded parity: byte-identical store contents.

The streaming front-end must be a pure transport optimization: a
sequence of batch uploads driven through a held streaming connection
and the same sequence through the buffer-whole threaded fabric leave
**byte-identical** store contents (ids, minutes, trusted flags, encoded
bodies, per-minute order) and identical acks — hypothesis-checked on
all four backends: memory, sqlite (group commit on), sharded, procs.

Uploads are sequential within each arm, so insertion order is
deterministic and the comparison is exact, not just set-equal.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.system import ViewMapSystem
from repro.net.concurrency import ConcurrentViewMapServer, ThreadedNetwork
from repro.net.messages import decode_message, encode_message, pack_vp_batch_frame
from repro.net.streaming import StreamingNetwork
from tests.net.test_wire_frame import (
    POOL_SIZE,
    make_backend,
    make_complete_vp,
    store_contents,
)


@pytest.fixture(scope="module")
def vp_pool():
    return [make_complete_vp(seed) for seed in range(1, POOL_SIZE + 1)]


#: several batches per example so cross-request duplicates are exercised
compositions_strategy = st.lists(
    st.lists(st.integers(0, POOL_SIZE - 1), min_size=1, max_size=5),
    min_size=1,
    max_size=3,
)


def run_threaded(backend: str, pool, compositions) -> tuple[list, dict]:
    with ViewMapSystem(key_bits=512, seed=3, store=make_backend(backend)) as system:
        with ThreadedNetwork(workers=2) as net:
            server = ConcurrentViewMapServer(system=system, network=net)
            replies = []
            for composition in compositions:
                frame = pack_vp_batch_frame([pool[i] for i in composition])
                payload = encode_message("upload_vp_batch", session="s", frame=frame)
                replies.append(decode_message(net.send("v", server.address, payload)))
            return replies, store_contents(system)


def run_streaming(backend: str, pool, compositions) -> tuple[list, dict]:
    with ViewMapSystem(key_bits=512, seed=3, store=make_backend(backend)) as system:
        with StreamingNetwork(workers=2) as net:
            server = ConcurrentViewMapServer(system=system, network=net)
            conn = net.connect(server.address)
            replies = [
                conn.upload_frame(pack_vp_batch_frame([pool[i] for i in composition]))
                for composition in compositions
            ]
            return replies, store_contents(system)


def assert_transport_parity(backend: str, pool, compositions) -> None:
    threaded_replies, threaded = run_threaded(backend, pool, compositions)
    streamed_replies, streamed = run_streaming(backend, pool, compositions)
    for a, b in zip(threaded_replies, streamed_replies):
        assert a["kind"] == b["kind"] == "batch_ack"
        assert a["accepted"] == b["accepted"]
        assert a["inserted"] == b["inserted"]
    assert threaded == streamed


@pytest.mark.parametrize("backend", ["memory", "sqlite", "sharded"])
@given(compositions=compositions_strategy)
@settings(max_examples=10, deadline=None)
def test_streaming_and_threaded_store_identical_bytes(backend, vp_pool, compositions):
    assert_transport_parity(backend, vp_pool, compositions)


@given(compositions=compositions_strategy)
@settings(max_examples=3, deadline=None)
def test_streaming_parity_on_process_workers(vp_pool, compositions):
    assert_transport_parity("procs", vp_pool, compositions)
