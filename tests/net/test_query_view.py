"""Tests for the ``query_view`` wire message: decode-free span serving.

The read half of the zero-decode wire: the server replies with one
codec batch frame (stored spans when ``encoded=true``), and the client
decodes.  Both arms must return the exact VPs the store holds, and the
encoded arm's frame must be byte-identical to re-encoding the decoded
selection — the acceptance criterion the backend parity suite asserts
store-side, checked here end-to-end over the protocol.
"""

import pytest

from repro.core.system import ViewMapSystem
from repro.core.vehicle import VehicleAgent
from repro.errors import NetworkError
from repro.geo.geometry import Rect
from repro.net.client import VehicleClient
from repro.net.messages import decode_message, encode_message
from repro.net.onion import OnionNetwork
from repro.net.server import ViewMapServer
from repro.net.transport import InMemoryNetwork
from repro.store.codec import encode_vp_batch
from tests.conftest import run_linked_minute
from tests.store.conftest import fingerprints


@pytest.fixture
def serving_stack():
    net = InMemoryNetwork()
    onion = OnionNetwork(network=net, n_relays=4, hops=2, seed=5)
    system = ViewMapSystem(key_bits=512, seed=6)
    server = ViewMapServer(system=system, network=net)
    a = VehicleAgent(vehicle_id=1, seed=2)
    b = VehicleAgent(vehicle_id=2, seed=3)
    res_a, _ = run_linked_minute(a, b)
    client = VehicleClient(agent=a, onion=onion, wire_codec="frame")
    client.queue_minute_output(res_a.actual_vp, res_a.guard_vps)
    client.upload_pending_batch()
    return net, onion, system, server, client


class TestQueryView:
    def test_encoded_reply_matches_store(self, serving_stack):
        net, onion, system, server, client = serving_stack
        stored = system.database.by_minute(0)
        assert fingerprints(client.query_view(0)) == fingerprints(stored)

    def test_decoded_arm_agrees_with_encoded(self, serving_stack):
        net, onion, system, server, client = serving_stack
        encoded = client.query_view(0, encoded=True)
        decoded = client.query_view(0, encoded=False)
        assert fingerprints(encoded) == fingerprints(decoded)

    def test_encoded_frame_is_byte_identical_to_reencoding(self, serving_stack):
        net, onion, system, server, client = serving_stack
        payload = encode_message("query_view", session="s", minute=0, encoded=True)
        reply = decode_message(server.handle(payload))
        assert reply["kind"] == "view"
        stored = system.database.by_minute(0)
        assert reply["frame"] == encode_vp_batch(stored)
        assert reply["n"] == len(stored)

    def test_area_scoped_query(self, serving_stack):
        net, onion, system, server, client = serving_stack
        stored = system.database.by_minute(0)
        everywhere = Rect(-1e6, -1e6, 1e6, 1e6)
        assert fingerprints(client.query_view(0, area=everywhere)) == fingerprints(
            stored
        )
        nowhere = Rect(9e5, 9e5, 9.1e5, 9.1e5)
        assert client.query_view(0, area=nowhere) == []

    def test_trusted_filter(self, serving_stack):
        net, onion, system, server, client = serving_stack
        assert client.query_view(0, trusted_only=True) == []

    def test_empty_minute_serves_empty_frame(self, serving_stack):
        net, onion, system, server, client = serving_stack
        assert client.query_view(7777) == []

    def test_serve_encoded_bytes_histogram_observed(self, serving_stack):
        net, onion, system, server, client = serving_stack
        client.query_view(0)
        snap = server.metrics.snapshot()
        hist = snap.get("serve.encoded_bytes")
        assert hist is not None and hist["count"] >= 1
        assert hist["max"] > 0  # a non-empty frame was served

    def test_rtt_histogram_recorded_client_side(self, serving_stack):
        net, onion, system, server, client = serving_stack
        client.query_view(0)
        snap = client.metrics.snapshot()
        hist = snap.get("client.rtt.query_view.wall_s")
        assert hist is not None and hist["count"] >= 1


class TestQueryViewHardening:
    @pytest.mark.parametrize(
        "fields",
        [
            {},  # missing minute
            {"minute": "soon"},
            {"minute": -3},
            {"minute": 0, "area": [1.0, 2.0, 3.0]},
            {"minute": 0, "area": [1.0, 2.0, 3.0, float("nan")]},
            {"minute": 0, "area": [5.0, 0.0, 1.0, 1.0]},  # inverted box
        ],
    )
    def test_malformed_requests_get_error_replies(self, serving_stack, fields):
        net, onion, system, server, client = serving_stack
        payload = encode_message("query_view", session="s", **fields)
        reply = decode_message(server.handle(payload))
        assert reply["kind"] == "error"

    def test_malformed_request_raises_on_client(self, serving_stack):
        net, onion, system, server, client = serving_stack
        with pytest.raises(NetworkError):
            client._request("query_view", minute="soon")
