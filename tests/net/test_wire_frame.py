"""Zero-decode ``upload_vp_batch`` frame path: parity and rejection.

Two properties pin the fast path:

* **parity** — a batch uploaded through the frame codec and the same
  batch uploaded through the legacy block list leave byte-identical
  store contents (ids, minutes, trusted flags, encoded bodies, and
  per-minute order) on every backend: memory, sqlite (group commit on),
  sharded and procs.  The fast path must be a pure transport
  optimization, invisible to investigation reads.
* **rejection** — a malformed frame (truncated buffer, record count
  that disagrees with the bytes present, wrong body size, trusted
  claim, oversized batch) is refused with a clean ``ValidationError``
  before a single record is ingested: no partial batches, ever.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.neighbors import NeighborTable
from repro.core.system import ViewMapSystem
from repro.core.vehicle import VehicleAgent
from repro.core.viewdigest import VDGenerator, make_secret
from repro.core.viewprofile import ViewProfile, build_view_profile
from repro.errors import NetworkError, ValidationError, WireFormatError
from repro.geo.geometry import Point
from repro.net.client import VehicleClient
from repro.net.messages import (
    MAX_VP_BATCH,
    decode_message,
    encode_message,
    pack_vp_batch,
    pack_vp_batch_frame,
    unpack_vp_batch_frame,
)
from repro.net.onion import OnionNetwork
from repro.net.server import ViewMapServer
from repro.net.transport import InMemoryNetwork
from repro.store import MemoryStore, ProcessShardedStore, ShardedStore, SQLiteStore
from repro.store.codec import encode_vp, encode_vp_batch, iter_encoded_records
from tests.conftest import run_linked_minute

POOL_SIZE = 8


def make_complete_vp(seed: int) -> ViewProfile:
    """One upload-eligible (60-digest) VP on a seeded trajectory."""
    gen = VDGenerator(make_secret(seed))
    minute = seed % 3
    base = minute * 60.0
    for i in range(60):
        gen.tick(base + i + 1, Point(40.0 * seed + 2.0 * i, 120.0 * (seed % 5)), b"chunk")
    return build_view_profile(gen.digests, NeighborTable())


@pytest.fixture(scope="module")
def vp_pool() -> list[ViewProfile]:
    """Complete VPs are expensive to build; share one pool per module."""
    return [make_complete_vp(seed) for seed in range(1, POOL_SIZE + 1)]


def make_backend(kind: str):
    if kind == "memory":
        return MemoryStore()
    if kind == "sqlite":
        return SQLiteStore(group_commit_rows=8)
    if kind == "sharded":
        return ShardedStore.memory(n_shards=3, shard_cells=3)
    if kind == "procs":
        return ProcessShardedStore.memory(n_workers=2, shard_cells=2)
    raise AssertionError(kind)


def store_contents(system: ViewMapSystem) -> dict:
    """Everything an investigation can observe, bodies as exact bytes."""
    contents: dict = {"minutes": system.database.minutes()}
    for minute in contents["minutes"]:
        contents[minute] = [
            (vp.vp_id, vp.minute, vp.trusted, encode_vp(vp))
            for vp in system.database.by_minute(minute)
        ]
    return contents


def upload_compositions(system: ViewMapSystem, pool, compositions, codec: str) -> list:
    """Drive one server through a sequence of batch uploads; return replies."""
    net = InMemoryNetwork()
    server = ViewMapServer(system=system, network=net)
    replies = []
    for composition in compositions:
        batch = [pool[i] for i in composition]
        if codec == "frame":
            payload = encode_message(
                "upload_vp_batch", session="s", frame=pack_vp_batch_frame(batch)
            )
        else:
            payload = encode_message(
                "upload_vp_batch", session="s", vps=pack_vp_batch(batch)
            )
        replies.append(decode_message(server.handle(payload)))
    return replies


#: several batches per example so cross-request duplicates are exercised
compositions_strategy = st.lists(
    st.lists(st.integers(0, POOL_SIZE - 1), min_size=1, max_size=5),
    min_size=1,
    max_size=3,
)


def assert_wire_parity(backend: str, pool, compositions) -> None:
    with ViewMapSystem(key_bits=512, seed=3, store=make_backend(backend)) as legacy:
        with ViewMapSystem(key_bits=512, seed=3, store=make_backend(backend)) as fast:
            legacy_replies = upload_compositions(legacy, pool, compositions, "blocks")
            fast_replies = upload_compositions(fast, pool, compositions, "frame")
            # the two paths agree on every ack AND on the stored bytes
            for a, b in zip(legacy_replies, fast_replies):
                assert a["accepted"] == b["accepted"]
                assert a["inserted"] == b["inserted"]
            assert store_contents(legacy) == store_contents(fast)


@pytest.mark.parametrize("backend", ["memory", "sqlite", "sharded"])
@given(compositions=compositions_strategy)
@settings(max_examples=20, deadline=None)
def test_frame_and_legacy_paths_store_identical_bytes(backend, vp_pool, compositions):
    assert_wire_parity(backend, vp_pool, compositions)


@given(compositions=compositions_strategy)
@settings(max_examples=5, deadline=None)
def test_frame_parity_on_process_workers(vp_pool, compositions):
    assert_wire_parity("procs", vp_pool, compositions)


class TestMalformedFrames:
    """Every malformed frame is rejected whole — no partial ingest."""

    @pytest.fixture
    def stack(self):
        net = InMemoryNetwork()
        system = ViewMapSystem(key_bits=512, seed=4)
        server = ViewMapServer(system=system, network=net)
        return system, server

    def reject(self, system, server, frame: bytes) -> str:
        before = len(system.database)
        reply = decode_message(
            server.handle(encode_message("upload_vp_batch", session="s", frame=frame))
        )
        assert reply["kind"] == "error"
        assert len(system.database) == before, "partial ingest on a rejected frame"
        return reply["reason"]

    def test_truncated_buffer(self, stack, vp_pool):
        system, server = stack
        frame = pack_vp_batch_frame([vp_pool[0], vp_pool[1]])
        for cut in (3, len(frame) // 2, len(frame) - 1):
            with pytest.raises(ValidationError):
                unpack_vp_batch_frame(frame[:cut])
            self.reject(system, server, frame[:cut])

    def test_record_count_mismatch(self, stack, vp_pool):
        system, server = stack
        frame = bytearray(pack_vp_batch_frame([vp_pool[0], vp_pool[1]]))
        # metadata claims three records, the body carries two
        frame[1:5] = (3).to_bytes(4, "big")
        with pytest.raises(ValidationError):
            unpack_vp_batch_frame(bytes(frame))
        self.reject(system, server, bytes(frame))
        # ...and claims one record, leaving a whole record trailing
        frame[1:5] = (1).to_bytes(4, "big")
        with pytest.raises(ValidationError):
            unpack_vp_batch_frame(bytes(frame))
        self.reject(system, server, bytes(frame))

    def test_partial_vp_body_rejected(self, stack):
        # a structurally valid frame whose record is not a complete
        # 60-digest VP: storable by the codec, not uploadable
        system, server = stack
        gen = VDGenerator(make_secret(99))
        for i in range(8):
            gen.tick(float(i + 1), Point(5.0 * i, 0.0), b"chunk")
        short_vp = build_view_profile(gen.digests, NeighborTable())
        frame = encode_vp_batch([short_vp])
        with pytest.raises(ValidationError, match="complete"):
            unpack_vp_batch_frame(frame)
        self.reject(system, server, frame)

    def test_trusted_claim_rejected(self, stack, vp_pool):
        system, server = stack
        vp = vp_pool[2]
        vp_trusted = ViewProfile(digests=vp.digests, bloom=vp.bloom, trusted=True)
        vp_trusted.__dict__.pop("_storage_blob", None)
        frame = encode_vp_batch([vp_trusted])
        with pytest.raises(ValidationError, match="trusted"):
            unpack_vp_batch_frame(frame)
        reason = self.reject(system, server, frame)
        assert "trusted" in reason

    def test_oversized_batch_rejected(self, stack, vp_pool):
        system, server = stack
        frame = pack_vp_batch_frame([vp_pool[0]])
        record = list(iter_encoded_records(frame))[0]
        oversized = b"".join(
            [
                frame[0:1],
                (MAX_VP_BATCH + 1).to_bytes(4, "big"),
                frame[record[1] : record[2]] * (MAX_VP_BATCH + 1),
            ]
        )
        with pytest.raises(ValidationError, match="limit"):
            unpack_vp_batch_frame(oversized)
        self.reject(system, server, oversized)

    def test_garbage_body_rejected_despite_correct_length(self, stack, vp_pool):
        # a body of the right size but wrong blob version: storing it
        # would poison every later read of the minute, so the upload
        # must bounce — zero-decode cannot mean zero-validation
        system, server = stack
        frame = bytearray(pack_vp_batch_frame([vp_pool[0]]))
        from repro.store.codec import RECORD_OVERHEAD_BYTES

        body_start = 5 + RECORD_OVERHEAD_BYTES
        frame[body_start] = 99
        with pytest.raises(ValidationError, match="version"):
            unpack_vp_batch_frame(bytes(frame))
        self.reject(system, server, bytes(frame))

    def test_body_keyed_by_other_id_rejected(self, stack, vp_pool):
        # sidecar vp_id and body digests must agree: otherwise one valid
        # body could be registered under unlimited distinct identifiers
        system, server = stack
        frame = bytearray(pack_vp_batch_frame([vp_pool[0]]))
        id_offset = 5 + 1 + 4 + 32  # batch header + flags + minute + bbox
        frame[id_offset] ^= 0xFF
        with pytest.raises(ValidationError, match="vp_id"):
            unpack_vp_batch_frame(bytes(frame))
        self.reject(system, server, bytes(frame))

    def test_minute_mismatch_rejected(self, stack, vp_pool):
        # the sidecar minute indexes storage; it must match the body's
        # first digest time or investigations would never find the VP
        system, server = stack
        vp = vp_pool[0]
        frame = bytearray(pack_vp_batch_frame([vp]))
        minute_offset = 5 + 1  # batch header + flags
        frame[minute_offset : minute_offset + 4] = (vp.minute + 7).to_bytes(4, "big")
        with pytest.raises(ValidationError, match="minute"):
            unpack_vp_batch_frame(bytes(frame))
        self.reject(system, server, bytes(frame))

    def test_forged_bbox_rejected(self, stack, vp_pool):
        # the sidecar bbox feeds the spatial index and shard routing; a
        # box that disagrees with the body's packed locations would let
        # an uploader hide from (or pollute) area investigations
        import struct

        system, server = stack
        frame = bytearray(pack_vp_batch_frame([vp_pool[0]]))
        bbox_offset = 5 + 1 + 4  # batch header + flags + minute
        # shrink x_min so the box stays ordered but disagrees with the body
        forged = struct.unpack_from(">d", frame, bbox_offset)[0] - 5000.0
        struct.pack_into(">d", frame, bbox_offset, forged)
        with pytest.raises(ValidationError, match="locations"):
            unpack_vp_batch_frame(bytes(frame))
        self.reject(system, server, bytes(frame))

    def test_nonstandard_bloom_k_rejected(self, stack, vp_pool):
        # the legacy path pins k=8 (BloomFilter.from_bytes default); a
        # frame declaring a smaller k would inflate false linkage, so
        # the wire form must refuse any other hash count
        system, server = stack
        frame = bytearray(pack_vp_batch_frame([vp_pool[0]]))
        from repro.store.codec import RECORD_OVERHEAD_BYTES

        k_offset = 5 + RECORD_OVERHEAD_BYTES + 1  # body blob version byte first
        frame[k_offset : k_offset + 2] = (1).to_bytes(2, "big")
        with pytest.raises(ValidationError, match="k=1"):
            unpack_vp_batch_frame(bytes(frame))
        self.reject(system, server, bytes(frame))

    def test_nan_digest_locations_rejected(self, stack, vp_pool):
        # min/max silently skip NaN, so a body whose digests carry NaN
        # locations with a sidecar bbox matching only the finite ones
        # must be caught per digest — stored NaN positions would crash
        # the memory grid and hide from every area investigation
        import struct

        from repro.store.codec import RECORD_OVERHEAD_BYTES

        system, server = stack
        frame = bytearray(pack_vp_batch_frame([vp_pool[0]]))
        base = 5 + RECORD_OVERHEAD_BYTES + 7  # frame + record head + blob head
        for j in range(1, 60):  # first digest stays finite (matches bbox=point)
            struct.pack_into(">2f", frame, base + j * 72 + 8, float("nan"), float("nan"))
        x, y = struct.unpack_from(">2f", frame, base + 8)
        struct.pack_into(">4d", frame, 5 + 1 + 4, x, y, x, y)  # bbox of the finite one
        with pytest.raises(ValidationError, match="non-finite"):
            unpack_vp_batch_frame(bytes(frame))
        self.reject(system, server, bytes(frame))

    def test_non_finite_bbox_rejected(self, stack, vp_pool):
        # NaN/Inf bbox doubles feed shard routing; they must die at the
        # wire as a clean ValidationError, not escape as ValueError
        import struct

        system, server = stack
        frame = bytearray(pack_vp_batch_frame([vp_pool[0]]))
        bbox_offset = 5 + 1 + 4  # batch header + flags + minute
        frame[bbox_offset : bbox_offset + 8] = struct.pack(">d", float("nan"))
        with pytest.raises(ValidationError, match="bounding box"):
            unpack_vp_batch_frame(bytes(frame))
        self.reject(system, server, bytes(frame))

    def test_damaged_record_rejects_the_healthy_ones_too(self, stack, vp_pool):
        # first record intact, second truncated: the intact one must
        # NOT land — rejection is all-or-nothing per frame
        system, server = stack
        frame = pack_vp_batch_frame([vp_pool[0], vp_pool[1]])
        self.reject(system, server, frame[: len(frame) - 40])
        assert vp_pool[0].vp_id not in system.database

    def test_pack_frame_refuses_ineligible_vps(self, vp_pool):
        gen = VDGenerator(make_secret(7))
        gen.tick(1.0, Point(0.0, 0.0), b"chunk")
        partial = build_view_profile(gen.digests, NeighborTable())
        with pytest.raises(WireFormatError):
            pack_vp_batch_frame([partial])
        vp = vp_pool[0]
        trusted = ViewProfile(digests=vp.digests, bloom=vp.bloom, trusted=True)
        with pytest.raises(WireFormatError):
            pack_vp_batch_frame([trusted])


class TestFrameClient:
    def test_client_frame_codec_uploads_whole_minute(self):
        net = InMemoryNetwork()
        onion = OnionNetwork(network=net, n_relays=4, hops=2, seed=5)
        system = ViewMapSystem(key_bits=512, seed=6)
        server = ViewMapServer(system=system, network=net)
        a = VehicleAgent(vehicle_id=1, seed=2)
        b = VehicleAgent(vehicle_id=2, seed=3)
        res_a, _ = run_linked_minute(a, b)
        client = VehicleClient(agent=a, onion=onion, wire_codec="frame")
        client.queue_minute_output(res_a.actual_vp, res_a.guard_vps)
        staged = len(client.pending_vps)
        assert client.upload_pending_batch() == staged
        assert len(system.database) == staged
        assert res_a.actual_vp.vp_id in system.database
        assert client.pending_vps == []
        # one frame request carried the whole minute
        batch_requests = [k for k, _ in server.session_log if k == "upload_vp_batch"]
        assert len(batch_requests) == 1

    def test_unknown_wire_codec_rejected(self):
        net = InMemoryNetwork()
        onion = OnionNetwork(network=net, n_relays=4, hops=2, seed=5)
        agent = VehicleAgent(vehicle_id=1, seed=2)
        with pytest.raises(NetworkError):
            VehicleClient(agent=agent, onion=onion, wire_codec="msgpack")
