"""Tests for the batched VP upload path and hardened dispatch."""

import pytest

from repro.core.system import ViewMapSystem
from repro.core.vehicle import VehicleAgent
from repro.net.client import VehicleClient
from repro.net.messages import (
    MAX_VP_BATCH,
    decode_message,
    encode_message,
    pack_vp_batch,
)
from repro.net.onion import OnionNetwork
from repro.net.server import ViewMapServer
from repro.net.transport import InMemoryNetwork
from repro.errors import WireFormatError
from tests.conftest import run_linked_minute


@pytest.fixture
def stack():
    net = InMemoryNetwork()
    onion = OnionNetwork(network=net, n_relays=4, hops=2, seed=5)
    system = ViewMapSystem(key_bits=512, seed=6)
    server = ViewMapServer(system=system, network=net)
    return net, onion, system, server


@pytest.fixture
def client_with_minute(stack):
    net, onion, system, server = stack
    a = VehicleAgent(vehicle_id=1, seed=2)
    b = VehicleAgent(vehicle_id=2, seed=3)
    res_a, _ = run_linked_minute(a, b)
    client = VehicleClient(agent=a, onion=onion)
    client.queue_minute_output(res_a.actual_vp, res_a.guard_vps)
    return stack, client, res_a


class TestBatchUpload:
    def test_upload_pending_batch_lands_all(self, client_with_minute):
        (net, onion, system, server), client, res = client_with_minute
        staged = len(client.pending_vps)
        assert client.upload_pending_batch() == staged
        assert len(system.database) == staged
        assert res.actual_vp.vp_id in system.database
        assert client.pending_vps == []
        assert client.uploaded == staged

    def test_single_round_trip_for_whole_minute(self, client_with_minute):
        (net, onion, system, server), client, _ = client_with_minute
        client.upload_pending_batch()
        batch_requests = [k for k, _ in server.session_log if k == "upload_vp_batch"]
        assert len(batch_requests) == 1

    def test_duplicates_rejected_per_vp(self, client_with_minute):
        (net, onion, system, server), client, res = client_with_minute
        client.upload_pending_batch()
        # restage the actual VP plus an in-batch duplicate pair
        client.queue_minute_output(res.actual_vp, [])
        assert client.upload_pending_batch() == 0
        assert len(system.database) == 1 + len(res.guard_vps)

    def test_in_batch_duplicates_counted_once(self, stack):
        net, onion, system, server = stack
        a = VehicleAgent(vehicle_id=5, seed=7)
        b = VehicleAgent(vehicle_id=6, seed=8)
        res_a, _ = run_linked_minute(a, b)
        payload = encode_message(
            "upload_vp_batch",
            session="s",
            vps=pack_vp_batch([res_a.actual_vp, res_a.actual_vp]),
        )
        reply = decode_message(server.handle(payload))
        assert reply["kind"] == "batch_ack"
        assert reply["accepted"] == [True, False]
        assert reply["inserted"] == 1

    def test_oversized_batch_rejected(self):
        with pytest.raises(WireFormatError):
            pack_vp_batch([None] * (MAX_VP_BATCH + 1))


class TestDispatchHardening:
    def test_unknown_kind_is_closed_world(self, stack):
        net, onion, system, server = stack
        reply = decode_message(server.handle(encode_message("reboot", session="x")))
        assert reply["kind"] == "error"
        assert "unknown kind" in reply["reason"]

    def test_crafted_kinds_cannot_reach_non_handlers(self, stack):
        net, onion, system, server = stack
        # names that exist on the server object but are not handlers
        for kind in ("handle", "system", "network", "__init__", "session_log"):
            reply = decode_message(server.handle(encode_message(kind, session="x")))
            assert reply["kind"] == "error", kind
            assert "unknown kind" in reply["reason"]

    def test_registry_covers_exactly_the_protocol(self, stack):
        net, onion, system, server = stack
        assert set(server._handlers) == {
            "upload_vp",
            "upload_vp_batch",
            "query_view",
            "list_solicitations",
            "upload_video",
            "list_rewards",
            "claim_reward",
            "sign_blinded",
            "public_key",
        }
