"""Backpressure properties: bounded admission, retry hints, clean sheds.

Two layers:

* :class:`~repro.obs.admission.AdmissionController` in isolation —
  under any interleaving of admits and releases the per-shard depth
  bound and the global pending-bytes cap are never exceeded, every
  rejection yields a strictly positive ``retry_after``, and releasing
  everything returns the controller to empty.
* the streaming transport end-to-end — with the store gated shut and
  the admission queue full, every rejected upload gets a ``busy`` reply
  carrying ``retry_after``, **nothing** from a rejected upload lands in
  the store, and the acks for the admitted uploads resolve unaffected
  once the store opens.
"""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.system import ViewMapSystem
from repro.net.concurrency import ConcurrentViewMapServer
from repro.net.messages import decode_message, pack_vp_batch_frame
from repro.net.streaming import StreamingNetwork
from repro.obs.admission import AdmissionController
from repro.obs.metrics import counter_value
from repro.store import MemoryStore
from tests.net.test_wire_frame import make_complete_vp

# ---------------------------------------------------------------------------
# Controller invariants in isolation
# ---------------------------------------------------------------------------

ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("admit"), st.integers(0, 7), st.integers(1, 4096)),
        st.tuples(st.just("release"), st.just(0), st.just(0)),
    ),
    max_size=60,
)


@given(
    ops=ops_strategy,
    n_shards=st.integers(1, 4),
    max_depth=st.integers(1, 5),
    max_pending=st.integers(2048, 16384),
)
@settings(max_examples=200, deadline=None)
def test_admission_controller_invariants(ops, n_shards, max_depth, max_pending):
    ctrl = AdmissionController(
        n_shards=n_shards, max_depth=max_depth, max_pending_bytes=max_pending
    )
    held = []
    rejections = 0
    for op, shard, nbytes in ops:
        if op == "admit":
            shard %= n_shards
            ticket = ctrl.try_admit(shard, nbytes)
            if ticket is None:
                rejections += 1
                assert ctrl.retry_after(shard) > 0.0
            else:
                held.append(ticket)
                assert ctrl.depth(shard) <= max_depth
                assert ctrl.pending_bytes() <= max_pending
        elif held:
            ctrl.release(held.pop())
    snap = ctrl.metrics.snapshot()
    assert counter_value(snap, "server.upload.shed") in (0, rejections)
    for ticket in held:
        ctrl.release(ticket)
    assert all(ctrl.depth(s) == 0 for s in range(n_shards))
    assert ctrl.pending_bytes() == 0


def test_retry_after_scales_with_depth_and_slo():
    observed = {"p99": 0.0}
    ctrl = AdmissionController(
        n_shards=1, max_depth=8, slo_p99_s=0.1, commit_p99=lambda: observed["p99"]
    )
    idle = ctrl.retry_after(0)
    tickets = [ctrl.try_admit(0, 100) for _ in range(4)]
    assert all(tickets)
    assert ctrl.retry_after(0) > idle, "deeper queue, longer hint"
    calm = ctrl.retry_after(0)
    observed["p99"] = 0.5  # SLO breached: hints double, bound halves
    assert ctrl.retry_after(0) == pytest.approx(calm * 2.0)
    assert ctrl.effective_depth() == 4
    for t in tickets:
        ctrl.release(t)


def test_slo_breach_halves_admission_bound():
    observed = {"p99": 0.0}
    ctrl = AdmissionController(
        n_shards=1, max_depth=4, slo_p99_s=0.1, commit_p99=lambda: observed["p99"]
    )
    held = [ctrl.try_admit(0, 1) for _ in range(2)]
    observed["p99"] = 1.0
    assert ctrl.try_admit(0, 1) is None, "halved bound sheds at depth 2"
    observed["p99"] = 0.0
    ticket = ctrl.try_admit(0, 1)
    assert ticket is not None, "recovered signal restores the full bound"
    for t in (*held, ticket):
        ctrl.release(t)


# ---------------------------------------------------------------------------
# End-to-end: full queue on the streaming transport
# ---------------------------------------------------------------------------


class GatedStore(MemoryStore):
    """A store whose encoded-ingest path blocks until the gate opens."""

    def __init__(self) -> None:
        super().__init__()
        self.gate = threading.Event()

    def insert_encoded(self, batch, strict: bool = True):
        assert self.gate.wait(30.0), "test gate never opened"
        return super().insert_encoded(batch, strict=strict)


@pytest.fixture(scope="module")
def vp_pool():
    return [make_complete_vp(seed) for seed in range(1, 8)]


def wait_for_depth(net: StreamingNetwork, depth: int, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while net.admission.depth(0) < depth:
        assert time.monotonic() < deadline, "admitted uploads never reached ingest"
        time.sleep(0.005)


@given(n_admitted=st.integers(1, 3), n_rejected=st.integers(1, 4))
@settings(max_examples=8, deadline=None)
def test_full_queue_sheds_cleanly(vp_pool, n_admitted, n_rejected):
    store = GatedStore()
    with ViewMapSystem(key_bits=512, seed=3, store=store) as system:
        with StreamingNetwork(
            workers=4, admission_shards=1, admission_depth=n_admitted
        ) as net:
            server = ConcurrentViewMapServer(system=system, network=net)
            # fill the admission queue: each upload blocks inside the store
            admitted = []
            for i in range(n_admitted):
                conn = net.connect(server.address)
                frame = pack_vp_batch_frame([vp_pool[i]])
                admitted.append(conn.upload_frame_async(frame))
            wait_for_depth(net, n_admitted)
            # every further upload is shed with a usable retry hint...
            for i in range(n_rejected):
                conn = net.connect(server.address)
                frame = pack_vp_batch_frame([vp_pool[n_admitted + i]])
                busy = conn.upload_frame(frame)
                assert busy["kind"] == "busy"
                assert busy["retry_after"] > 0.0
            # ...nothing of a rejected upload ever landed,
            assert len(system.database) == 0
            # and the admitted acks resolve unaffected once the store opens
            store.gate.set()
            for future in admitted:
                ack = decode_message(future.result(30.0))
                assert ack["kind"] == "batch_ack"
                assert ack["accepted"] == [True]
                assert ack["inserted"] == 1
            assert len(system.database) == n_admitted
            snap = net.metrics.snapshot()
            assert counter_value(snap, "server.upload.shed") >= n_rejected
