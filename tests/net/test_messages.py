"""Tests for protocol wire formats."""

import pytest

from repro.errors import WireFormatError
from repro.net.messages import (
    VP_WIRE_BYTES,
    decode_message,
    encode_message,
    pack_view_profile,
    unpack_view_profile,
)
from tests.core.test_viewprofile import make_vp


class TestVPWireFormat:
    def test_wire_size(self):
        vp = make_vp(seed=1)
        data = pack_view_profile(vp)
        assert len(data) == VP_WIRE_BYTES == 60 * 72 + 256

    def test_roundtrip(self):
        vp = make_vp(seed=2)
        restored = unpack_view_profile(pack_view_profile(vp))
        assert restored.vp_id == vp.vp_id
        assert len(restored.digests) == 60
        assert restored.bloom.to_bytes() == vp.bloom.to_bytes()
        assert restored.positions_array.tolist() == vp.positions_array.tolist()

    def test_unpacked_vp_never_trusted(self):
        vp = make_vp(seed=3)
        vp.trusted = True
        restored = unpack_view_profile(pack_view_profile(vp))
        assert not restored.trusted

    def test_incomplete_vp_rejected(self):
        vp = make_vp(seed=4, n=30)
        with pytest.raises(WireFormatError):
            pack_view_profile(vp)

    def test_wrong_size_rejected(self):
        with pytest.raises(WireFormatError):
            unpack_view_profile(b"\x00" * 100)


class TestEnvelope:
    def test_roundtrip_with_bytes_fields(self):
        msg = encode_message("upload_video", vp_id=b"\x01\x02", chunks=[b"a", b"b"])
        decoded = decode_message(msg)
        assert decoded["kind"] == "upload_video"
        assert decoded["vp_id"] == b"\x01\x02"
        assert decoded["chunks"] == [b"a", b"b"]

    def test_scalar_fields_pass_through(self):
        decoded = decode_message(encode_message("offer", units=5, label="x"))
        assert decoded["units"] == 5
        assert decoded["label"] == "x"

    def test_nested_structures(self):
        decoded = decode_message(
            encode_message("n", data={"inner": [b"\xff", 3]})
        )
        assert decoded["data"]["inner"] == [b"\xff", 3]

    def test_malformed_payload_rejected(self):
        with pytest.raises(WireFormatError):
            decode_message(b"\x00\x01not json")
        with pytest.raises(WireFormatError):
            decode_message(b'{"no_kind": 1}')
