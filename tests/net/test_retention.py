"""Tests for retention watermark advancement through the front-ends.

The upload stream is the authority's clock: when VPs for a newer minute
arrive, minutes that fell out of the solicitation window are evicted.
The serial server advances the watermark inline; the concurrent server
does it under ``control_lock`` with a lock-free fast path.
"""

from __future__ import annotations

from repro.core.neighbors import NeighborTable
from repro.core.system import ViewMapSystem
from repro.core.viewdigest import VDGenerator, make_secret
from repro.core.viewprofile import ViewProfile, build_view_profile
from repro.geo.geometry import Point
from repro.net.concurrency import ConcurrentViewMapServer, ThreadedNetwork
from repro.net.messages import decode_message, encode_message, pack_vp_batch
from repro.net.server import MAX_WATERMARK_STEP, ViewMapServer
from repro.net.transport import InMemoryNetwork
from repro.store import RetentionPolicy


def make_wire_vp(seed: int, minute: int, x0: float = 0.0) -> ViewProfile:
    """One complete (60-digest) VP, eligible for the upload wire format."""
    gen = VDGenerator(make_secret(seed))
    base = minute * 60.0
    for i in range(60):
        gen.tick(base + i + 1, Point(x0 + 2.0 * i, 50.0 * minute), b"chunk")
    return build_view_profile(gen.digests, NeighborTable())


def batch_payload(vps: list[ViewProfile], session: str = "s") -> bytes:
    return encode_message("upload_vp_batch", session=session, vps=pack_vp_batch(vps))


class TestSystemRetention:
    def test_advance_evicts_and_reports(self):
        system = ViewMapSystem(
            key_bits=512, seed=1, retention=RetentionPolicy(window_minutes=2)
        )
        for minute in range(4):
            system.ingest_vps([make_wire_vp(seed=minute + 1, minute=minute)])
        report = system.advance_retention(3)
        assert report is not None and report.evicted == 2
        assert system.database.minutes() == [2, 3]
        assert system.retention_watermark == 3

    def test_watermark_is_monotonic(self):
        system = ViewMapSystem(
            key_bits=512, seed=1, retention=RetentionPolicy(window_minutes=1)
        )
        system.ingest_vps([make_wire_vp(seed=1, minute=5)])
        assert system.advance_retention(5) is not None
        # a stale (or repeated) observation never un-evicts or re-runs
        assert system.advance_retention(5) is None
        assert system.advance_retention(3) is None
        assert system.retention_watermark == 5

    def test_no_policy_is_a_noop(self):
        system = ViewMapSystem(key_bits=512, seed=1)
        system.ingest_vps([make_wire_vp(seed=1, minute=0)])
        assert system.advance_retention(99) is None
        assert len(system.database) == 1

    def test_compaction_paced_not_per_minute(self):
        # eviction runs every pass; compaction only every compact_every
        # minutes of watermark progress (it does real maintenance work)
        system = ViewMapSystem(
            key_bits=512,
            seed=1,
            retention=RetentionPolicy(window_minutes=2, compact_every=3),
        )
        compacted = []
        for minute in range(1, 8):  # the fresh-system watermark anchors at 0
            system.ingest_vps([make_wire_vp(seed=minute + 1, minute=minute)])
            report = system.advance_retention(minute)
            compacted.append(bool(report.compaction))
        # one compaction per 3 minutes of watermark progress
        assert compacted == [False, True, False, False, True, False, False]

    def test_compact_every_zero_never_compacts(self):
        system = ViewMapSystem(
            key_bits=512,
            seed=1,
            retention=RetentionPolicy(window_minutes=1, compact_every=0),
        )
        for minute in range(1, 4):  # the fresh-system watermark anchors at 0
            system.ingest_vps([make_wire_vp(seed=minute + 1, minute=minute)])
            report = system.advance_retention(minute)
            assert report.compaction == {}


class TestSerialServerRetention:
    def test_uploads_advance_the_watermark(self):
        net = InMemoryNetwork()
        system = ViewMapSystem(
            key_bits=512, seed=1, retention=RetentionPolicy(window_minutes=2)
        )
        server = ViewMapServer(system=system, network=net)
        for minute in range(5):
            reply = decode_message(
                net.send("v", server.address,
                         batch_payload([make_wire_vp(seed=minute + 1, minute=minute)]))
            )
            assert reply["kind"] == "batch_ack" and reply["inserted"] == 1
        # minutes 0..2 fell out of the window as 3 and 4 arrived
        assert system.database.minutes() == [3, 4]
        assert system.retention_watermark == 4

    def test_far_future_minute_cannot_flush_the_store(self):
        # a single upload claiming a far-future minute (malicious or a
        # broken clock) must not evict the whole retained window: the
        # upload-driven watermark advances by at most MAX_WATERMARK_STEP
        net = InMemoryNetwork()
        system = ViewMapSystem(
            key_bits=512, seed=1, retention=RetentionPolicy(window_minutes=60)
        )
        server = ViewMapServer(system=system, network=net)
        for minute in range(3):
            net.send("v", server.address,
                     batch_payload([make_wire_vp(seed=minute + 1, minute=minute)]))
        net.send("v", server.address,
                 batch_payload([make_wire_vp(seed=99, minute=10**6)]))
        # the legitimate window survives; the watermark crept, not jumped
        assert set(system.database.minutes()) >= {0, 1, 2}
        assert system.retention_watermark <= 2 + MAX_WATERMARK_STEP
        # honest traffic keeps working afterwards
        reply = decode_message(
            net.send("v", server.address,
                     batch_payload([make_wire_vp(seed=5, minute=3)]))
        )
        assert reply["inserted"] == 1
        assert make_wire_vp(seed=5, minute=3).vp_id in system.database

    def test_fresh_system_first_packet_cannot_poison_the_watermark(self):
        # even an EMPTY store anchors the watermark (at minute 0), so the
        # very first accepted upload is clamped too — it can neither
        # evict anything nor push the monotonic watermark out of reach
        # of honest traffic
        net = InMemoryNetwork()
        system = ViewMapSystem(
            key_bits=512, seed=1, retention=RetentionPolicy(window_minutes=10)
        )
        assert system.retention_watermark == 0
        server = ViewMapServer(system=system, network=net)
        net.send("v", server.address,
                 batch_payload([make_wire_vp(seed=99, minute=10**6)]))
        assert system.retention_watermark <= MAX_WATERMARK_STEP
        # honest traffic still advances retention afterwards
        for minute in range(1, 5):
            net.send("v", server.address,
                     batch_payload([make_wire_vp(seed=minute, minute=minute)]))
        assert system.retention_watermark == 4

    def test_restarted_server_over_populated_store_is_clamped_too(self):
        # a fresh server process over a persistent store must not trust
        # its first observed upload either: the system seeds the
        # watermark from the stored minutes at construction
        from repro.store import MemoryStore

        store = MemoryStore()
        for minute in range(5):
            store.insert(make_wire_vp(seed=minute + 1, minute=minute))
        net = InMemoryNetwork()
        system = ViewMapSystem(
            key_bits=512, seed=1, store=store,
            retention=RetentionPolicy(window_minutes=10),
        )
        assert system.retention_watermark == 4  # seeded from the data
        server = ViewMapServer(system=system, network=net)
        net.send("v", server.address,
                 batch_payload([make_wire_vp(seed=99, minute=10**6)]))
        # the first observation is clamped relative to the stored data
        assert system.retention_watermark <= 4 + MAX_WATERMARK_STEP
        assert set(system.database.minutes()) >= {0, 1, 2, 3, 4}

    def test_no_policy_accumulates_forever(self):
        net = InMemoryNetwork()
        system = ViewMapSystem(key_bits=512, seed=1)
        server = ViewMapServer(system=system, network=net)
        for minute in range(5):
            net.send("v", server.address,
                     batch_payload([make_wire_vp(seed=minute + 1, minute=minute)]))
        assert system.database.minutes() == [0, 1, 2, 3, 4]


class TestConcurrentServerRetention:
    def test_concurrent_uploads_converge_to_the_window(self):
        with ThreadedNetwork(workers=6) as net:
            system = ViewMapSystem(
                key_bits=512, seed=1, retention=RetentionPolicy(window_minutes=3)
            )
            server = ConcurrentViewMapServer(system=system, network=net)
            payloads = [
                batch_payload(
                    [make_wire_vp(seed=10 * minute + i + 1, minute=minute, x0=9.0 * i)
                     for i in range(3)],
                    session=f"s{minute}",
                )
                for minute in range(8)
            ]
            futures = [
                net.send_async("v", server.address, payload) for payload in payloads
            ]
            for f in futures:
                assert decode_message(f.result())["kind"] == "batch_ack"
            # arrival order is arbitrary, so mid-flight eviction may keep
            # any superset of the final window (an early-arriving newest
            # minute evicts before the older batches land); one explicit
            # final pass under the control lock settles the steady state
            policy = system.retention
            with server.control_lock:
                system.database.evict_before(policy.cutoff(7))
            assert system.database.minutes() == [5, 6, 7]
            assert len(system.database) == 9
            system.close()

    def test_process_store_behind_concurrent_front_end(self):
        # the worker-process fleet wired end to end: concurrent batch
        # uploads through the server advance the watermark, eviction
        # fans out across worker processes, and the fleet id directory
        # (seeded over the pipe via iter_id_minutes) keeps rejecting
        # duplicates after the passes
        from repro.store import ProcessShardedStore

        store = ProcessShardedStore.memory(n_workers=2, shard_cells=2)
        with ThreadedNetwork(workers=4) as net:
            system = ViewMapSystem(
                key_bits=512, seed=1, store=store,
                retention=RetentionPolicy(window_minutes=2),
            )
            server = ConcurrentViewMapServer(system=system, network=net)
            for minute in range(5):
                reply = net.send(
                    "v", server.address,
                    batch_payload(
                        [make_wire_vp(seed=10 * minute + i + 1, minute=minute,
                                      x0=11.0 * i) for i in range(3)],
                        session=f"s{minute}",
                    ),
                )
                assert decode_message(reply)["kind"] == "batch_ack"
            assert system.retention_watermark == 4
            assert system.database.minutes() == [3, 4]
            # a duplicate of a retained VP is still rejected per-VP
            ack = decode_message(net.send(
                "v", server.address,
                batch_payload([make_wire_vp(seed=41, minute=4, x0=0.0)]),
            ))
            assert ack["accepted"] == [False]
            system.close()

    def test_retention_pass_runs_once_per_new_minute(self):
        with ThreadedNetwork(workers=4) as net:
            system = ViewMapSystem(
                key_bits=512, seed=1, retention=RetentionPolicy(window_minutes=1)
            )
            server = ConcurrentViewMapServer(system=system, network=net)
            # many uploads of the SAME minute: only the first can pay for
            # the control lock; the watermark ends at that minute
            futures = [
                net.send_async(
                    "v", server.address,
                    batch_payload([make_wire_vp(seed=i + 1, minute=2, x0=7.0 * i)]),
                )
                for i in range(8)
            ]
            for f in futures:
                f.result()
            assert system.retention_watermark == 2
            assert len(system.database) == 8
            system.close()
