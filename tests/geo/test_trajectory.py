"""Tests for timestamped trajectories."""

import pytest

from repro.errors import ValidationError
from repro.geo.geometry import Point
from repro.geo.trajectory import Trajectory


def straight(n=5):
    return Trajectory(
        times=[float(i) for i in range(n)], points=[Point(10.0 * i, 0) for i in range(n)]
    )


class TestConstruction:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            Trajectory(times=[0.0], points=[])

    def test_non_increasing_times_rejected(self):
        with pytest.raises(ValidationError):
            Trajectory(times=[0.0, 0.0], points=[Point(0, 0), Point(1, 1)])

    def test_append_enforces_order(self):
        traj = straight(3)
        with pytest.raises(ValidationError):
            traj.append(1.0, Point(0, 0))
        traj.append(10.0, Point(100, 0))
        assert len(traj) == 4


class TestInterpolation:
    def test_exact_samples(self):
        traj = straight()
        assert traj.at(2.0) == Point(20, 0)

    def test_linear_between_samples(self):
        traj = straight()
        assert traj.at(2.5) == Point(25, 0)

    def test_clamped_outside_range(self):
        traj = straight()
        assert traj.at(-5.0) == Point(0, 0)
        assert traj.at(99.0) == Point(40, 0)

    def test_empty_trajectory_raises(self):
        with pytest.raises(ValidationError):
            Trajectory().at(0.0)


class TestQueries:
    def test_endpoints(self):
        traj = straight()
        assert traj.start_time == 0.0 and traj.end_time == 4.0
        assert traj.start_point == Point(0, 0) and traj.end_point == Point(40, 0)

    def test_length(self):
        assert straight().length() == 40.0

    def test_resample(self):
        resampled = straight().resample([0.5, 1.5])
        assert len(resampled) == 2
        assert resampled.points[0] == Point(5, 0)

    def test_slice(self):
        sliced = straight().slice(1.0, 3.0)
        assert sliced.times == [1.0, 2.0, 3.0]

    def test_empty_queries_raise(self):
        empty = Trajectory()
        for attr in ("start_time", "end_time", "start_point", "end_point"):
            with pytest.raises(ValidationError):
                getattr(empty, attr)
