"""Tests for planar geometry primitives."""

import pytest

from repro.geo.geometry import (
    Point,
    Rect,
    distance,
    segment_intersects_rect,
    segments_intersect,
)


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_function_accepts_tuples(self):
        assert distance((0, 0), (3, 4)) == 5.0
        assert distance(Point(0, 0), (3, 4)) == 5.0

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_iter_and_tuple(self):
        assert tuple(Point(1, 2)) == (1, 2)
        assert Point(1, 2).to_tuple() == (1, 2)


class TestSegmentsIntersect:
    def test_crossing_segments(self):
        assert segments_intersect(Point(0, 0), Point(2, 2), Point(0, 2), Point(2, 0))

    def test_parallel_disjoint(self):
        assert not segments_intersect(Point(0, 0), Point(1, 0), Point(0, 1), Point(1, 1))

    def test_collinear_overlapping(self):
        assert segments_intersect(Point(0, 0), Point(2, 0), Point(1, 0), Point(3, 0))

    def test_touching_endpoint(self):
        assert segments_intersect(Point(0, 0), Point(1, 1), Point(1, 1), Point(2, 0))

    def test_near_miss(self):
        assert not segments_intersect(
            Point(0, 0), Point(1, 0), Point(1.01, 0.01), Point(2, 1)
        )


class TestRect:
    def test_invalid_corners_rejected(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)

    def test_contains(self):
        rect = Rect(0, 0, 10, 10)
        assert rect.contains(Point(5, 5))
        assert rect.contains(Point(0, 0))
        assert not rect.contains(Point(11, 5))
        assert rect.contains(Point(10.5, 5), eps=1.0)

    def test_dimensions(self):
        rect = Rect(1, 2, 4, 8)
        assert rect.width == 3 and rect.height == 6
        assert rect.center == Point(2.5, 5)

    def test_corners_and_edges(self):
        rect = Rect(0, 0, 1, 1)
        assert len(rect.corners()) == 4
        assert len(rect.edges()) == 4


class TestSegmentRect:
    def test_passing_through(self):
        rect = Rect(2, 2, 4, 4)
        assert segment_intersects_rect(Point(0, 3), Point(6, 3), rect)

    def test_endpoint_inside(self):
        rect = Rect(2, 2, 4, 4)
        assert segment_intersects_rect(Point(3, 3), Point(10, 10), rect)

    def test_clear_miss(self):
        rect = Rect(2, 2, 4, 4)
        assert not segment_intersects_rect(Point(0, 0), Point(1, 6), rect)

    def test_grazing_corner(self):
        rect = Rect(2, 2, 4, 4)
        assert segment_intersects_rect(Point(0, 4), Point(4, 0), rect)
