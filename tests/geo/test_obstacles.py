"""Tests for obstacle maps and line-of-sight models."""

from repro.geo.geometry import Point, Rect
from repro.geo.obstacles import Building, ObstacleKind, ObstacleMap, corridor_los


class TestObstacleMap:
    def make_map(self):
        omap = ObstacleMap()
        omap.add(Building(Rect(10, 10, 20, 20)))
        omap.add(Building(Rect(50, 0, 60, 30), kind=ObstacleKind.TUNNEL))
        return omap

    def test_clear_line(self):
        omap = self.make_map()
        assert omap.is_los(Point(0, 0), Point(5, 30))

    def test_blocked_line(self):
        omap = self.make_map()
        assert not omap.is_los(Point(0, 15), Point(30, 15))

    def test_blockers_listed(self):
        omap = self.make_map()
        blockers = omap.blockers(Point(0, 15), Point(100, 15))
        assert len(blockers) == 2

    def test_attenuation_sums(self):
        omap = self.make_map()
        att = omap.attenuation_db(Point(0, 15), Point(100, 15))
        assert att == ObstacleKind.BUILDING.attenuation_db + ObstacleKind.TUNNEL.attenuation_db

    def test_kinds_have_distinct_attenuations(self):
        values = {kind.attenuation_db for kind in ObstacleKind}
        assert len(values) == len(ObstacleKind)

    def test_vehicle_blockage_weaker_than_building(self):
        assert ObstacleKind.VEHICLE.attenuation_db < ObstacleKind.BUILDING.attenuation_db


class TestCorridorLos:
    BLOCK = 200.0

    def test_same_vertical_street(self):
        assert corridor_los(Point(200, 50), Point(200, 900), self.BLOCK)

    def test_same_horizontal_street(self):
        assert corridor_los(Point(50, 400), Point(950, 400), self.BLOCK)

    def test_different_streets_blocked(self):
        # mid-block positions on different streets: building between
        assert not corridor_los(Point(200, 100), Point(400, 300), self.BLOCK)

    def test_close_vehicles_always_los(self):
        assert corridor_los(Point(190, 100), Point(210, 110), self.BLOCK)

    def test_street_halfwidth_respected(self):
        # 10 m off the street axis still counts as on-street
        assert corridor_los(Point(210, 50), Point(205, 900), self.BLOCK)
        # 30 m off does not
        assert not corridor_los(Point(230, 50), Point(230, 900), self.BLOCK)

    def test_symmetry(self):
        a, b = Point(200, 50), Point(400, 300)
        assert corridor_los(a, b, self.BLOCK) == corridor_los(b, a, self.BLOCK)
