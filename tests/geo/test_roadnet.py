"""Tests for road-network grids."""

import pytest

from repro.errors import SimulationError
from repro.geo.geometry import Point
from repro.geo.roadnet import grid_city


class TestGridCity:
    def test_node_and_edge_counts(self):
        net = grid_city(1000, 1000, block_m=200)
        # 6x6 intersections, 2 * 6 * 5 streets
        assert net.node_count == 36
        assert net.edge_count == 60

    def test_positions_on_grid(self, small_grid):
        for node in small_grid.graph.nodes:
            p = small_grid.position(node)
            assert p.x % 200 == 0 and p.y % 200 == 0

    def test_edge_lengths_equal_block(self, small_grid):
        for a, b in small_grid.graph.edges:
            assert small_grid.edge_length(a, b) == 200.0

    def test_nearest_node(self, small_grid):
        assert small_grid.nearest_node(Point(10, 10)) == (0, 0)
        assert small_grid.nearest_node(Point(390, 210)) == (2, 1)

    def test_random_node_is_member(self, small_grid):
        for seed in range(10):
            assert small_grid.random_node(seed) in small_grid.graph.nodes

    def test_random_point_on_edge_lies_on_street(self, small_grid):
        for seed in range(10):
            p = small_grid.random_point_on_edge(seed)
            on_street = (p.x % 200 < 1e-6) or (p.y % 200 < 1e-6)
            assert on_street

    def test_neighbors_are_adjacent(self, small_grid):
        for nbr in small_grid.neighbors((1, 1)):
            dx = abs(nbr[0] - 1)
            dy = abs(nbr[1] - 1)
            assert dx + dy == 1

    def test_degenerate_dimensions_rejected(self):
        with pytest.raises(SimulationError):
            grid_city(0, 1000)
        with pytest.raises(SimulationError):
            grid_city(1000, 1000, block_m=-5)

    def test_connectivity(self, small_grid):
        import networkx as nx

        assert nx.is_connected(small_grid.graph)
