"""Tests for road routing and polyline sampling."""

import pytest

from repro.errors import RoutingError
from repro.geo.geometry import Point
from repro.geo.routing import (
    Router,
    make_grid_route_fn,
    polyline_length,
    polyline_point_at,
    route_polyline,
)


class TestRouter:
    def test_route_nodes_shortest(self, small_grid):
        router = Router(small_grid)
        path = router.route_nodes((0, 0), (2, 0))
        assert path == [(0, 0), (1, 0), (2, 0)]

    def test_route_points_endpoints_exact(self, small_grid):
        router = Router(small_grid)
        start, end = Point(10, 15), Point(790, 615)
        polyline = router.route_points(start, end)
        assert polyline[0] == start
        assert polyline[-1] == end
        assert len(polyline) >= 3

    def test_unknown_node_raises(self, small_grid):
        router = Router(small_grid)
        with pytest.raises(RoutingError):
            router.route_nodes((0, 0), (99, 99))

    def test_route_length_positive(self, small_grid):
        router = Router(small_grid)
        polyline = router.route_points(Point(0, 0), Point(800, 800))
        assert router.route_length(polyline) >= 1600.0  # at least Manhattan


class TestPolylineSampling:
    def test_fraction_endpoints(self):
        line = [Point(0, 0), Point(10, 0)]
        assert polyline_point_at(line, 0.0) == Point(0, 0)
        assert polyline_point_at(line, 1.0) == Point(10, 0)

    def test_midpoint_on_multi_segment(self):
        line = [Point(0, 0), Point(10, 0), Point(10, 10)]
        mid = polyline_point_at(line, 0.5)
        assert mid == Point(10, 0)

    def test_monotone_fractions_monotone_arclength(self):
        line = [Point(0, 0), Point(10, 0), Point(10, 10)]
        samples = route_polyline(line, [0.1, 0.4, 0.9])
        d = [polyline_length([line[0], s]) for s in samples[:1]]
        assert samples[0].x < samples[1].x + samples[1].y
        assert samples[2].y > 0

    def test_out_of_range_fractions_clamped(self):
        line = [Point(0, 0), Point(10, 0)]
        assert route_polyline(line, [-1.0])[0] == Point(0, 0)
        assert route_polyline(line, [2.0])[0] == Point(10, 0)

    def test_single_point_polyline(self):
        assert route_polyline([Point(1, 1)], [0.5]) == [Point(1, 1)]

    def test_empty_polyline_raises(self):
        with pytest.raises(RoutingError):
            route_polyline([], [0.5])

    def test_polyline_length(self):
        line = [Point(0, 0), Point(3, 4), Point(3, 14)]
        assert polyline_length(line) == 15.0


class TestGridRoute:
    def test_l_shaped_route(self):
        route_fn = make_grid_route_fn(200.0)
        polyline = route_fn(Point(0, 100), Point(400, 300))
        assert polyline[0] == Point(0, 100)
        assert polyline[-1] == Point(400, 300)
        assert len(polyline) == 3  # one corner

    def test_straight_route_has_no_corner(self):
        route_fn = make_grid_route_fn(200.0)
        polyline = route_fn(Point(0, 0), Point(400, 0))
        # corner coincides with an endpoint, so it is dropped
        assert len(polyline) == 2

    def test_route_length_at_least_manhattan(self):
        route_fn = make_grid_route_fn(200.0)
        start, end = Point(20, 200), Point(600, 420)
        polyline = route_fn(start, end)
        manhattan = abs(end.x - start.x) + abs(end.y - start.y)
        assert polyline_length(polyline) >= 0.7 * manhattan
