"""Tests for the dashcam recorder bridging vision into the core pipeline."""

import numpy as np

from repro.core.solicitation import validate_video_upload
from repro.core.vehicle import VehicleAgent
from repro.geo.geometry import Point
from repro.vision.frames import FrameSpec
from repro.vision.recorder import DashcamRecorder


class TestDashcamRecorder:
    def test_chunks_decode_to_frames(self):
        recorder = DashcamRecorder(vehicle_id=1)
        chunk = recorder.record_second(0, 1)
        frame = recorder.decode_chunk(chunk)
        assert frame.shape == (120, 160)

    def test_chunks_deterministic_per_second(self):
        a = DashcamRecorder(vehicle_id=1)
        b = DashcamRecorder(vehicle_id=1)
        assert a.record_second(0, 1) == b.record_second(0, 1)
        assert a.record_second(0, 1) != a.record_second(0, 2)

    def test_different_vehicles_different_footage(self):
        a = DashcamRecorder(vehicle_id=1)
        b = DashcamRecorder(vehicle_id=2)
        assert a.record_second(0, 1) != b.record_second(0, 1)

    def test_realtime_budget_tracked(self):
        recorder = DashcamRecorder(vehicle_id=3)
        for i in range(1, 6):
            recorder.record_second(0, i)
        assert len(recorder.timings) == 5
        assert recorder.realtime_ok(budget_s=1.0)

    def test_agent_with_recorded_frames_validates_upload(self):
        recorder = DashcamRecorder(
            vehicle_id=5, spec=FrameSpec(width=80, height=60, n_plates=1)
        )
        agent = VehicleAgent(vehicle_id=5, chunk_fn=recorder.chunk_fn(), seed=5)
        for i in range(60):
            agent.emit(i + 1.0, Point(float(i), 0.0), minute=0)
        result = agent.finalize_minute()
        # the solicited "video" is real blurred frames, and hash replay holds
        assert validate_video_upload(result.actual_vp, result.video.chunks)
        frame = np.frombuffer(result.video.chunks[0], dtype=np.uint8)
        assert frame.size == 80 * 60
