"""Tests for plate localization."""

import numpy as np

from repro.vision.frames import FrameSpec, synthesize_frame
from repro.vision.plates import detection_recall, localize_plates


class TestLocalization:
    def test_finds_embedded_plates(self):
        recalls = []
        for seed in range(10):
            frame, truth = synthesize_frame(FrameSpec(), rng=seed)
            detected = localize_plates(frame)
            recalls.append(detection_recall(truth, detected))
        assert np.mean(recalls) > 0.9

    def test_rejects_non_plate_distractors(self):
        # frames with distractors only: nothing should be detected
        frame, _ = synthesize_frame(FrameSpec(n_plates=0, n_distractors=4), rng=1)
        detected = localize_plates(frame)
        assert len(detected) <= 1  # occasional merged blob tolerated

    def test_empty_frame_no_detections(self):
        frame = np.full((480, 640), 90, dtype=np.uint8)
        assert localize_plates(frame) == []

    def test_detection_boxes_overlap_truth(self):
        frame, truth = synthesize_frame(FrameSpec(n_plates=2), rng=2)
        detected = localize_plates(frame)
        for t in truth:
            assert any(t.intersects(d) for d in detected)


class TestRecallMetric:
    def test_perfect_recall(self):
        from repro.vision.frames import PlateRegion

        truth = [PlateRegion(0, 0, 10, 10)]
        assert detection_recall(truth, truth) == 1.0

    def test_no_truth_is_perfect(self):
        assert detection_recall([], []) == 1.0

    def test_miss_counted(self):
        from repro.vision.frames import PlateRegion

        truth = [PlateRegion(0, 0, 10, 10), PlateRegion(100, 100, 10, 10)]
        detected = [PlateRegion(1, 1, 10, 10)]
        assert detection_recall(truth, detected) == 0.5
