"""Tests for platform scaling models."""

from repro.vision.blur import PipelineTiming
from repro.vision.platforms import REFERENCE_PLATFORMS


class TestReferencePlatforms:
    def test_three_platforms(self):
        assert len(REFERENCE_PLATFORMS) == 3
        names = [p.name for p in REFERENCE_PLATFORMS]
        assert any("Pi" in n for n in names)

    def test_scale_reproduces_published_ratios(self):
        pi, imac08, imac14 = REFERENCE_PLATFORMS
        base = PipelineTiming(
            capture_io_s=0.010, blur_s=0.01018, write_io_s=0.01044
        )
        scaled = pi.scale(base, imac14)
        assert abs(scaled.blur_s / base.blur_s - 50.19 / 10.18) < 1e-9

    def test_identity_scale_on_baseline(self):
        imac14 = REFERENCE_PLATFORMS[-1]
        base = PipelineTiming(capture_io_s=0.01, blur_s=0.02, write_io_s=0.01)
        scaled = imac14.scale(base, imac14)
        assert scaled.total_s == base.total_s

    def test_pi_slower_than_imacs(self):
        pi, imac08, imac14 = REFERENCE_PLATFORMS
        base = PipelineTiming(capture_io_s=0.01, blur_s=0.01, write_io_s=0.01)
        t_pi = pi.scale(base, imac14).total_s
        t_08 = imac08.scale(base, imac14).total_s
        t_14 = imac14.scale(base, imac14).total_s
        assert t_pi > t_08 > t_14
