"""Tests for synthetic frame generation."""

import numpy as np

from repro.vision.frames import FrameSpec, PlateRegion, synthesize_frame


class TestPlateRegion:
    def test_slices_select_region(self):
        region = PlateRegion(x=10, y=20, width=30, height=5)
        rows, cols = region.slices()
        assert rows == slice(20, 25)
        assert cols == slice(10, 40)

    def test_intersection(self):
        a = PlateRegion(0, 0, 10, 10)
        b = PlateRegion(5, 5, 10, 10)
        c = PlateRegion(20, 20, 5, 5)
        assert a.intersects(b)
        assert not a.intersects(c)


class TestSynthesizeFrame:
    def test_frame_shape_and_dtype(self):
        frame, _ = synthesize_frame(FrameSpec(), rng=1)
        assert frame.shape == (480, 640)
        assert frame.dtype == np.uint8

    def test_requested_plate_count(self):
        _, plates = synthesize_frame(FrameSpec(n_plates=3), rng=2)
        assert len(plates) == 3

    def test_plates_are_bright_regions(self):
        frame, plates = synthesize_frame(FrameSpec(), rng=3)
        for plate in plates:
            rows, cols = plate.slices()
            assert frame[rows, cols].mean() > 150

    def test_plates_have_plate_aspect(self):
        _, plates = synthesize_frame(FrameSpec(n_plates=4), rng=4)
        for plate in plates:
            aspect = plate.width / plate.height
            assert 2.0 <= aspect <= 6.5

    def test_deterministic_under_seed(self):
        f1, p1 = synthesize_frame(FrameSpec(), rng=5)
        f2, p2 = synthesize_frame(FrameSpec(), rng=5)
        assert np.array_equal(f1, f2)
        assert p1 == p2

    def test_plates_do_not_overlap(self):
        _, plates = synthesize_frame(FrameSpec(n_plates=4), rng=6)
        for i, a in enumerate(plates):
            for b in plates[i + 1 :]:
                assert not a.intersects(b)
