"""Tests for the blur pipeline."""

import numpy as np

from repro.vision.blur import BlurPipeline, blur_regions
from repro.vision.frames import FrameSpec, synthesize_frame


class TestBlurRegions:
    def test_blur_reduces_detail(self):
        frame, truth = synthesize_frame(FrameSpec(), rng=1)
        blurred = blur_regions(frame, truth)
        for plate in truth:
            rows, cols = plate.slices()
            assert blurred[rows, cols].std() < frame[rows, cols].std()

    def test_outside_regions_untouched(self):
        frame, truth = synthesize_frame(FrameSpec(n_plates=1), rng=2)
        blurred = blur_regions(frame, truth)
        mask = np.ones_like(frame, dtype=bool)
        rows, cols = truth[0].slices()
        mask[rows, cols] = False
        assert np.array_equal(frame[mask], blurred[mask])

    def test_original_not_mutated(self):
        frame, truth = synthesize_frame(FrameSpec(), rng=3)
        copy = frame.copy()
        blur_regions(frame, truth)
        assert np.array_equal(frame, copy)

    def test_empty_region_list_is_identity(self):
        frame, _ = synthesize_frame(FrameSpec(), rng=4)
        assert np.array_equal(blur_regions(frame, []), frame)


class TestBlurPipeline:
    def test_process_returns_frame_and_timing(self):
        pipeline = BlurPipeline()
        frame, truth = synthesize_frame(FrameSpec(), rng=5)
        blurred, timing = pipeline.process(frame)
        assert blurred.shape == frame.shape
        assert timing.blur_s > 0
        assert timing.io_s > 0
        assert timing.total_s == timing.io_s + timing.blur_s
        assert timing.fps == 1.0 / timing.total_s

    def test_plates_anonymized_end_to_end(self):
        pipeline = BlurPipeline()
        frame, truth = synthesize_frame(FrameSpec(), rng=6)
        blurred, _ = pipeline.process(frame)
        for plate in truth:
            rows, cols = plate.slices()
            # glyph stripes smeared: contrast collapses
            assert blurred[rows, cols].std() < 0.6 * frame[rows, cols].std()
