"""Tests for seeded RNG helpers."""

import random

from repro.util.rng import derive_seed, make_rng


class TestMakeRng:
    def test_seed_gives_deterministic_stream(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_instance_passes_through(self):
        rng = random.Random(1)
        assert make_rng(rng) is rng

    def test_none_gives_unseeded_rng(self):
        assert isinstance(make_rng(None), random.Random)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_labels_matter(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_master_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_result_is_63_bit_non_negative(self):
        for i in range(50):
            seed = derive_seed(i, "x")
            assert 0 <= seed < 2**63

    def test_no_arithmetic_correlation(self):
        # consecutive labels must not give consecutive seeds
        seeds = [derive_seed(0, i) for i in range(10)]
        diffs = {b - a for a, b in zip(seeds, seeds[1:])}
        assert len(diffs) == 9
