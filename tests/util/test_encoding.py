"""Tests for byte-encoding helpers."""

import math

import pytest

from repro.errors import WireFormatError
from repro.util.encoding import (
    f32round,
    from_hex,
    pack_float,
    pack_pair_f32,
    pack_uint,
    to_hex,
    unpack_float,
    unpack_pair_f32,
    unpack_uint,
)


class TestFloats:
    def test_roundtrip(self):
        for value in (0.0, 1.5, -273.15, 1e300, math.pi):
            assert unpack_float(pack_float(value)) == value

    def test_width(self):
        assert len(pack_float(1.0)) == 8

    def test_bad_length_rejected(self):
        with pytest.raises(WireFormatError):
            unpack_float(b"\x00" * 7)


class TestUints:
    def test_roundtrip(self):
        for value, width in ((0, 1), (255, 1), (2**63, 8), (2**127, 16)):
            assert unpack_uint(pack_uint(value, width)) == value

    def test_negative_rejected(self):
        with pytest.raises(WireFormatError):
            pack_uint(-1, 8)

    def test_overflow_rejected(self):
        with pytest.raises(WireFormatError):
            pack_uint(256, 1)


class TestHex:
    def test_roundtrip(self):
        assert from_hex(to_hex(b"\x00\xffab")) == b"\x00\xffab"

    def test_invalid_hex_rejected(self):
        with pytest.raises(WireFormatError):
            from_hex("zz")


class TestF32Pair:
    def test_width(self):
        assert len(pack_pair_f32(1.0, 2.0)) == 8

    def test_roundtrip_after_rounding(self):
        x, y = 1234.5678, -98.7654
        rx, ry = f32round(x), f32round(y)
        assert unpack_pair_f32(pack_pair_f32(rx, ry)) == (rx, ry)

    def test_f32round_idempotent(self):
        value = f32round(0.1)
        assert f32round(value) == value

    def test_f32round_close_to_input(self):
        assert abs(f32round(12345.678) - 12345.678) < 0.01

    def test_bad_length_rejected(self):
        with pytest.raises(WireFormatError):
            unpack_pair_f32(b"\x00" * 7)
