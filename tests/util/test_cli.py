"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_is_default(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig15" in out and "table2" in out

    def test_explicit_list(self, capsys):
        assert main(["list"]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])


class TestCommands:
    def test_fig8(self, capsys):
        assert main(["fig8"]) == 0
        out = capsys.readouterr().out
        assert "cascaded" in out

    def test_fig15_small(self, capsys):
        assert main(["fig15", "--windows", "4"]) == 0
        out = capsys.readouterr().out
        assert "Downtown" in out

    def test_table2_small(self, capsys):
        assert main(["table2", "--windows", "4"]) == 0
        out = capsys.readouterr().out
        assert "Tunnels" in out

    def test_privacy_small(self, capsys):
        assert main([
            "privacy", "--vehicles", "10", "--area-km", "1.5", "--minutes", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "entropy" in out

    def test_fig21_export(self, tmp_path, capsys):
        out_file = tmp_path / "vm.json"
        assert main([
            "fig21", "--vehicles", "15", "--area-km", "1.5", "--out", str(out_file),
        ]) == 0
        assert out_file.exists()
        assert "viewlinks" in capsys.readouterr().out

    def test_fig21_cell_sharded_store_with_retention(self, capsys):
        # composite routing + a window covering the whole 2-minute trace:
        # the figure output is unchanged and the store reports both minutes
        assert main([
            "fig21", "--vehicles", "12", "--area-km", "1.5",
            "--store", "sharded", "--shards", "4", "--shard-cells", "4",
            "--retention-minutes", "5", "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "store: sharded" in out and "2 minutes" in out

    def test_fig21_retention_shorter_than_trace_evicts_early_minutes(self, capsys):
        assert main([
            "fig21", "--vehicles", "12", "--area-km", "1.5",
            "--retention-minutes", "1",
        ]) == 0
        # only the newest of the two simulated minutes survives ingest
        assert "1 minutes" in capsys.readouterr().out
