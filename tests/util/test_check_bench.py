"""The benchmark gate carries gauges through reduce + summary rendering."""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_bench  # noqa: E402  (path set up above)


def report(fullname: str, median: float, extra_info: dict | None = None) -> dict:
    return {
        "benchmarks": [
            {
                "fullname": fullname,
                "stats": {"median": median, "mean": median, "rounds": 3},
                "extra_info": extra_info or {},
            }
        ]
    }


class TestReduceReport:
    def test_gauges_survive_reduction(self):
        gauges = {"server.admission.depth": 1571.0, "server.upload.shed_rate": 0.0}
        reduced = check_bench.reduce_report(
            report("b.py::test_stream", 1.0, {"gauges": gauges})
        )
        assert reduced["b.py::test_stream"]["gauges"] == gauges

    def test_entries_without_extras_stay_flat(self):
        reduced = check_bench.reduce_report(report("b.py::test_plain", 2.0))
        assert set(reduced["b.py::test_plain"]) == {"median", "mean", "rounds"}


class TestSummaryTable:
    def test_gauge_subrows_render_baseline_and_run(self):
        baseline = {
            "b.py::t": {
                "median": 1.0,
                "mean": 1.0,
                "rounds": 3,
                "gauges": {"server.admission.depth": 1200.0},
            }
        }
        current = {
            "b.py::t": {
                "median": 1.1,
                "mean": 1.1,
                "rounds": 3,
                "gauges": {
                    "server.admission.depth": 1571.0,
                    "server.upload.shed_rate": 0.25,
                },
            }
        }
        lines = check_bench.delta_table(baseline, current, 0.25, require_all=True)
        depth = next(line for line in lines if "server.admission.depth" in line)
        assert "(gauge)" in depth
        assert "1,200" in depth and "1,571" in depth
        shed = next(line for line in lines if "server.upload.shed_rate" in line)
        assert "— " in shed and "0.25" in shed  # no baseline value yet

    def test_gauge_free_tables_unchanged(self):
        entry = {"median": 1.0, "mean": 1.0, "rounds": 3}
        lines = check_bench.delta_table({"b.py::t": entry}, {"b.py::t": entry}, 0.25, False)
        assert not any("(gauge)" in line for line in lines)

    def test_verdicts_still_gate_medians(self):
        base = {"median": 1.0, "mean": 1.0, "rounds": 3}
        slow = {"median": 1.5, "mean": 1.5, "rounds": 3}
        assert check_bench.verdict(base, slow, 0.25, False) == "REGRESSED"
        assert check_bench.verdict(base, base, 0.25, False) == "OK"
        assert check_bench.verdict(None, base, 0.25, True) == "NEW"
