"""The documentation set stays healthy: links resolve, code parses."""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402  (path set up above)


class TestRepositoryDocs:
    def test_expected_documents_exist(self):
        names = {f.relative_to(REPO_ROOT).as_posix() for f in check_docs.doc_files()}
        assert "README.md" in names
        assert {
            "docs/architecture.md",
            "docs/protocol.md",
            "docs/stores.md",
        } <= names

    def test_no_broken_links_or_code_blocks(self):
        problems = [
            p for f in check_docs.doc_files() for p in check_docs.check_file(f)
        ]
        assert problems == []


class TestCheckerCatchesRot:
    def test_broken_relative_link_reported(self, tmp_path):
        doc = tmp_path / "README.md"
        doc.write_text("see [missing](nowhere/gone.md)\n")
        problems = check_docs.check_file(doc, root=tmp_path)
        assert any("broken link" in p for p in problems)

    def test_bad_python_block_reported(self, tmp_path):
        doc = tmp_path / "README.md"
        doc.write_text("```python\ndef broken(:\n```\n")
        problems = check_docs.check_file(doc, root=tmp_path)
        assert any("does not parse" in p for p in problems)

    def test_clean_document_passes(self, tmp_path):
        (tmp_path / "other.md").write_text("# hi\n")
        doc = tmp_path / "README.md"
        doc.write_text(
            "# Title\n\nsee [other](other.md) and [top](#title)\n\n"
            "```python\nprint('ok')\n```\n"
        )
        assert check_docs.check_file(doc, root=tmp_path) == []

    def test_broken_anchor_reported(self, tmp_path):
        doc = tmp_path / "README.md"
        doc.write_text("# Title\n\n[gone](#not-a-heading)\n")
        problems = check_docs.check_file(doc, root=tmp_path)
        assert any("broken anchor" in p for p in problems)

    def test_indented_fence_does_not_swallow_rest_of_file(self, tmp_path):
        doc = tmp_path / "README.md"
        doc.write_text(
            "# Title\n\n"
            "- a list item with code:\n\n"
            "  ```python\n"
            "  print('ok')\n"
            "  ```\n\n"
            "[gone](missing.md)\n"
        )
        problems = check_docs.check_file(doc, root=tmp_path)
        assert any("broken link" in p for p in problems)

    def test_indented_python_block_is_syntax_checked(self, tmp_path):
        doc = tmp_path / "README.md"
        doc.write_text("- item:\n\n  ```python\n  def broken(:\n  ```\n")
        problems = check_docs.check_file(doc, root=tmp_path)
        assert any("does not parse" in p for p in problems)
