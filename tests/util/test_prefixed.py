"""Tests for the length-prefixed section helpers in the encoding module."""

import pytest

from repro.errors import WireFormatError
from repro.util.encoding import pack_prefixed, unpack_prefixed


class TestPrefixed:
    def test_round_trip(self):
        blob = pack_prefixed(b"hello") + b"tail"
        payload, offset = unpack_prefixed(blob)
        assert payload == b"hello"
        assert blob[offset:] == b"tail"

    def test_empty_payload(self):
        payload, offset = unpack_prefixed(pack_prefixed(b""))
        assert payload == b""
        assert offset == 4

    def test_offset_and_width(self):
        blob = b"xx" + pack_prefixed(b"abc", width=2)
        payload, offset = unpack_prefixed(blob, offset=2, width=2)
        assert payload == b"abc"
        assert offset == len(blob)

    def test_truncated_prefix_rejected(self):
        with pytest.raises(WireFormatError):
            unpack_prefixed(b"\x00\x00")

    def test_short_payload_rejected(self):
        with pytest.raises(WireFormatError):
            unpack_prefixed(pack_prefixed(b"abcdef")[:-2])
