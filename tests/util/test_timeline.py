"""Tests for minute/second alignment helpers."""

from repro.util.timeline import align_to_minute, minute_of, minute_start, second_in_minute


class TestMinuteMath:
    def test_minute_of(self):
        assert minute_of(0) == 0
        assert minute_of(59.9) == 0
        assert minute_of(60) == 1
        assert minute_of(3600) == 60

    def test_second_in_minute(self):
        assert second_in_minute(0) == 0
        assert second_in_minute(59) == 59
        assert second_in_minute(60) == 0
        assert second_in_minute(125) == 5

    def test_minute_start(self):
        assert minute_start(0) == 0
        assert minute_start(3) == 180

    def test_align_to_minute(self):
        assert align_to_minute(125.7) == 120
        assert align_to_minute(60) == 60

    def test_roundtrip_identities(self):
        for t in (0, 1, 59, 60, 61, 3599, 3600):
            assert minute_start(minute_of(t)) + second_in_minute(t) == int(t)
