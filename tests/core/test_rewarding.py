"""Tests for the untraceable rewarding service."""

import pytest

from repro.core.rewarding import RewardService, claim_reward
from repro.core.viewdigest import make_secret, vp_id_from_secret
from repro.crypto.blind import BlindSigner
from repro.crypto.cash import CashRegistry
from repro.errors import CryptoError, ValidationError


@pytest.fixture
def service(rsa_keypair):
    return RewardService(signer=BlindSigner(keypair=rsa_keypair))


class TestRewardService:
    def test_post_and_pending(self, service):
        secret = make_secret(1)
        vp_id = vp_id_from_secret(secret)
        service.post_reward(vp_id, units=3)
        assert service.pending_ids() == [vp_id]

    def test_invalid_units_rejected(self, service):
        with pytest.raises(ValidationError):
            service.post_reward(b"\x01" * 16, units=0)

    def test_duplicate_post_rejected(self, service):
        service.post_reward(b"\x01" * 16, units=1)
        with pytest.raises(ValidationError):
            service.post_reward(b"\x01" * 16, units=1)

    def test_ownership_proof_required(self, service):
        secret = make_secret(2)
        vp_id = vp_id_from_secret(secret)
        service.post_reward(vp_id, units=2)
        assert service.offered_units(vp_id, secret) == 2
        with pytest.raises(CryptoError):
            service.offered_units(vp_id, make_secret(3))

    def test_unknown_grant_rejected(self, service):
        with pytest.raises(ValidationError):
            service.offered_units(b"\x09" * 16, make_secret(4))

    def test_batch_size_enforced(self, service):
        secret = make_secret(5)
        vp_id = vp_id_from_secret(secret)
        service.post_reward(vp_id, units=3)
        with pytest.raises(ValidationError):
            service.sign_blinded_batch(vp_id, secret, [1, 2])  # too few


class TestClaimReward:
    def test_full_claim_flow(self, service, rsa_keypair):
        secret = make_secret(6)
        vp_id = vp_id_from_secret(secret)
        service.post_reward(vp_id, units=4)
        cash = claim_reward(service, vp_id, secret, rng=9)
        assert len(cash) == 4
        registry = CashRegistry(public=rsa_keypair.public)
        for unit in cash:
            registry.redeem(unit)
        assert registry.redeemed == 4

    def test_reward_single_collection(self, service):
        secret = make_secret(7)
        vp_id = vp_id_from_secret(secret)
        service.post_reward(vp_id, units=1)
        claim_reward(service, vp_id, secret, rng=1)
        with pytest.raises(ValidationError):
            claim_reward(service, vp_id, secret, rng=2)

    def test_cash_not_linkable_to_vp(self, service):
        # no byte of the VP identifier appears in the minted cash
        secret = make_secret(8)
        vp_id = vp_id_from_secret(secret)
        service.post_reward(vp_id, units=2)
        cash = claim_reward(service, vp_id, secret, rng=3)
        for unit in cash:
            assert vp_id not in unit.message
            assert secret not in unit.message
