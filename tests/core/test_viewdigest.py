"""Tests for view digests and the VD generator."""

import pytest

from repro.constants import VD_MESSAGE_BYTES
from repro.core.viewdigest import (
    VDGenerator,
    ViewDigest,
    make_secret,
    validate_incoming_vd,
    vp_id_from_secret,
)
from repro.errors import ValidationError, WireFormatError
from repro.geo.geometry import Point


def sample_vd(**overrides):
    fields = dict(
        second_index=1,
        t=1.0,
        location=(100.0, 200.0),
        file_size=870_000,
        initial_location=(100.0, 200.0),
        vp_id=bytes(16),
        chain_hash=b"\x01" * 16,
    )
    fields.update(overrides)
    return ViewDigest(**fields)


class TestViewDigest:
    def test_wire_size_is_72_bytes(self):
        assert len(sample_vd().pack()) == VD_MESSAGE_BYTES == 72

    def test_pack_unpack_roundtrip(self):
        vd = sample_vd()
        restored = ViewDigest.unpack(vd.pack())
        assert restored == vd

    def test_bad_wire_length_rejected(self):
        with pytest.raises(WireFormatError):
            ViewDigest.unpack(b"\x00" * 71)

    def test_invalid_second_index_rejected(self):
        with pytest.raises(ValidationError):
            sample_vd(second_index=0)
        with pytest.raises(ValidationError):
            sample_vd(second_index=61)

    def test_invalid_id_or_hash_length_rejected(self):
        with pytest.raises(ValidationError):
            sample_vd(vp_id=b"short")
        with pytest.raises(ValidationError):
            sample_vd(chain_hash=b"short")

    def test_bloom_key_is_wire_bytes(self):
        vd = sample_vd()
        assert vd.bloom_key() == vd.pack()


class TestSecrets:
    def test_secret_is_8_bytes(self):
        assert len(make_secret(1)) == 8

    def test_vp_id_is_hash_of_secret(self):
        secret = make_secret(2)
        assert len(vp_id_from_secret(secret)) == 16
        assert vp_id_from_secret(secret) == vp_id_from_secret(secret)

    def test_different_secrets_different_ids(self):
        assert vp_id_from_secret(make_secret(1)) != vp_id_from_secret(make_secret(2))


class TestVDGenerator:
    def test_emits_sequential_digests(self):
        gen = VDGenerator(make_secret(3))
        for i in range(1, 6):
            vd = gen.tick(float(i), Point(10.0 * i, 0), b"chunk")
            assert vd.second_index == i
            assert vd.vp_id == gen.vp_id
        assert gen.seconds_recorded == 5

    def test_file_size_accumulates(self):
        gen = VDGenerator(make_secret(4))
        vd1 = gen.tick(1.0, Point(0, 0), b"abcd")
        vd2 = gen.tick(2.0, Point(1, 0), b"efghij")
        assert vd1.file_size == 4
        assert vd2.file_size == 10

    def test_initial_location_pinned(self):
        gen = VDGenerator(make_secret(5))
        gen.tick(1.0, Point(7.0, 8.0), b"x")
        vd2 = gen.tick(2.0, Point(99.0, 99.0), b"y")
        assert vd2.initial_location[0] == pytest.approx(7.0)
        assert vd2.initial_location[1] == pytest.approx(8.0)

    def test_complete_after_60_ticks(self):
        gen = VDGenerator(make_secret(6))
        for i in range(60):
            gen.tick(float(i + 1), Point(float(i), 0), b"c")
        assert gen.complete
        with pytest.raises(ValidationError):
            gen.tick(61.0, Point(0, 0), b"c")

    def test_bad_secret_length_rejected(self):
        with pytest.raises(ValidationError):
            VDGenerator(b"short")

    def test_chain_hash_changes_every_second(self):
        gen = VDGenerator(make_secret(7))
        hashes = {gen.tick(float(i + 1), Point(0, 0), b"c").chain_hash for i in range(10)}
        assert len(hashes) == 10


class TestIncomingValidation:
    def test_accepts_fresh_nearby(self):
        vd = sample_vd()
        assert validate_incoming_vd(vd, now=1.2, receiver_position=Point(150, 200), max_range_m=400)

    def test_rejects_stale_time(self):
        vd = sample_vd()
        assert not validate_incoming_vd(
            vd, now=5.0, receiver_position=Point(150, 200), max_range_m=400
        )

    def test_rejects_far_location(self):
        vd = sample_vd()
        assert not validate_incoming_vd(
            vd, now=1.0, receiver_position=Point(900, 200), max_range_m=400
        )
