"""Tests for the store-backed VP database facade and its satellite fixes."""

import numpy as np
import pytest

from repro.core.database import VPDatabase
from repro.errors import ValidationError
from repro.geo.geometry import Point
from repro.store import MemoryStore, ShardedStore, SQLiteStore
from tests.store.conftest import fingerprints, make_vp


class TestFacadeOverBackends:
    @pytest.mark.parametrize(
        "store_factory", [MemoryStore, SQLiteStore, lambda: ShardedStore.memory(2)]
    )
    def test_public_api_over_any_backend(self, store_factory):
        db = VPDatabase(store=store_factory())
        vp = make_vp(seed=1)
        db.insert(vp)
        assert len(db) == 1
        assert vp.vp_id in db
        assert fingerprints([db.get(vp.vp_id)]) == fingerprints([vp])
        assert db.minutes() == [0]
        db.close()

    def test_default_backend_is_memory(self):
        db = VPDatabase()
        assert isinstance(db.store, MemoryStore)
        vp = make_vp(seed=2)
        db.insert(vp)
        assert db.get(vp.vp_id) is vp  # stored by reference

    def test_insert_many_batch_path(self):
        db = VPDatabase()
        vps = [make_vp(seed=i) for i in range(4)]
        assert db.insert_many(vps) == 4
        assert db.insert_many(vps) == 0  # idempotent re-ingest
        assert db.stats().vps == 4


class TestInsertTrustedMutation:
    def test_rejected_insert_does_not_flip_caller_flag(self):
        # the seed implementation set vp.trusted = True *before* the
        # duplicate check, leaking trust into caller-held objects
        db = VPDatabase()
        db.insert(make_vp(seed=5))
        dup = make_vp(seed=5)
        with pytest.raises(ValidationError):
            db.insert_trusted(dup)
        assert not dup.trusted

    def test_accepted_insert_still_sets_flag(self):
        db = VPDatabase()
        vp = make_vp(seed=6)
        db.insert_trusted(vp)
        assert vp.trusted
        assert db.trusted_by_minute(0) == [vp]


class TestNearestTrustedVectorized:
    def test_matches_pointwise_reference(self):
        db = VPDatabase()
        vps = [make_vp(seed=i, x0=123.0 * i, y0=37.0 * i) for i in range(6)]
        for vp in vps:
            db.insert_trusted(vp)
        site = Point(400.0, 100.0)

        def pointwise(vp):
            return min(site.distance_to(p) for p in vp.trajectory.points)

        expected = sorted(vps, key=pointwise)[:3]
        assert db.nearest_trusted(0, site, k=3) == expected

    def test_uses_positions_array(self):
        db = VPDatabase()
        vp = make_vp(seed=9)
        db.insert_trusted(vp)
        assert isinstance(vp.positions_array, np.ndarray)
        assert db.nearest_trusted(0, Point(0, 0)) == [vp]
