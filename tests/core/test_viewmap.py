"""Tests for viewmap construction."""

import pytest

from repro.core.vehicle import VehicleAgent
from repro.core.viewmap import (
    ViewMapGraph,
    build_viewmap,
    coverage_area,
    mutual_linkage,
)
from repro.errors import ValidationError
from repro.geo.geometry import Point, Rect
from tests.conftest import run_linked_minute


class TestMutualLinkage:
    def test_linked_pair(self, linked_pair):
        _, _, res_a, res_b = linked_pair
        assert mutual_linkage(res_a.actual_vp, res_b.actual_vp)

    def test_unlinked_pair(self, unlinked_pair):
        _, _, res_a, res_b = unlinked_pair
        assert not mutual_linkage(res_a.actual_vp, res_b.actual_vp)


class TestBuildViewmap:
    def test_two_way_edge_created(self, linked_pair):
        _, _, res_a, res_b = linked_pair
        vmap = build_viewmap([res_a.actual_vp, res_b.actual_vp], minute=0)
        assert vmap.edge_count == 1
        assert vmap.graph.has_edge(res_a.actual_vp.vp_id, res_b.actual_vp.vp_id)

    def test_unlinked_profiles_stay_isolated(self, unlinked_pair):
        _, _, res_a, res_b = unlinked_pair
        vmap = build_viewmap([res_a.actual_vp, res_b.actual_vp], minute=0)
        assert vmap.edge_count == 0
        assert len(vmap.isolated_ids()) == 2
        assert vmap.member_ratio() == 0.0

    def test_guards_join_via_creator(self, linked_pair):
        _, _, res_a, res_b = linked_pair
        profiles = [res_a.actual_vp, res_b.actual_vp] + res_a.guard_vps + res_b.guard_vps
        vmap = build_viewmap(profiles, minute=0)
        for guard in res_a.guard_vps:
            assert vmap.graph.has_edge(guard.vp_id, res_a.actual_vp.vp_id)

    def test_wrong_minute_excluded(self, linked_pair):
        _, _, res_a, res_b = linked_pair
        vmap = build_viewmap([res_a.actual_vp, res_b.actual_vp], minute=7)
        assert vmap.node_count == 0

    def test_area_filter(self, linked_pair):
        _, _, res_a, res_b = linked_pair
        far_area = Rect(10_000, 10_000, 11_000, 11_000)
        vmap = build_viewmap([res_a.actual_vp, res_b.actual_vp], minute=0, area=far_area)
        assert vmap.node_count == 0

    def test_distance_gate_blocks_far_pairs(self):
        # two vehicles 600 m apart that (impossibly) claim mutual blooms
        a = VehicleAgent(vehicle_id=1, seed=1)
        b = VehicleAgent(vehicle_id=2, seed=2)
        res_a, res_b = run_linked_minute(a, b, lateral_gap=600.0)
        # receive() rejected the VDs (out of range) so blooms are empty,
        # but even with forged blooms the geometry gate must hold:
        vmap = build_viewmap(
            [res_a.actual_vp, res_b.actual_vp], minute=0, skip_bloom_check=True
        )
        assert vmap.edge_count == 0

    def test_skip_bloom_mode_links_by_geometry(self, unlinked_pair):
        _, _, res_a, res_b = unlinked_pair
        vmap = build_viewmap(
            [res_a.actual_vp, res_b.actual_vp], minute=0, skip_bloom_check=True
        )
        assert vmap.edge_count == 1


class TestViewMapGraph:
    def test_add_viewlink_requires_members(self, linked_pair):
        _, _, res_a, _ = linked_pair
        vmap = ViewMapGraph(minute=0)
        vmap.add_profile(res_a.actual_vp)
        with pytest.raises(ValidationError):
            vmap.add_viewlink(res_a.actual_vp.vp_id, b"\x00" * 16)

    def test_trusted_ids(self, linked_pair):
        _, _, res_a, res_b = linked_pair
        res_a.actual_vp.trusted = True
        vmap = build_viewmap([res_a.actual_vp, res_b.actual_vp], minute=0)
        assert vmap.trusted_ids() == [res_a.actual_vp.vp_id]

    def test_members_near(self, linked_pair):
        _, _, res_a, res_b = linked_pair
        vmap = build_viewmap([res_a.actual_vp, res_b.actual_vp], minute=0)
        near = vmap.members_near(Point(300, 25), 100.0)
        assert set(near) == {res_a.actual_vp.vp_id, res_b.actual_vp.vp_id}

    def test_degree_stats(self, linked_pair):
        _, _, res_a, res_b = linked_pair
        vmap = build_viewmap([res_a.actual_vp, res_b.actual_vp], minute=0)
        stats = vmap.degree_stats()
        assert stats["nodes"] == 2 and stats["edges"] == 1
        assert stats["avg_degree"] == 1.0

    def test_empty_graph_stats(self):
        vmap = ViewMapGraph(minute=0)
        assert vmap.degree_stats()["nodes"] == 0
        assert vmap.member_ratio() == 0.0


class TestCoverageArea:
    def test_spans_site_and_trusted(self, linked_pair):
        _, _, res_a, _ = linked_pair
        site = Point(-2000.0, 0.0)
        area = coverage_area(site, [res_a.actual_vp], margin_m=100.0)
        assert area.contains(site)
        assert area.contains(res_a.actual_vp.start_point)
        assert area.contains(res_a.actual_vp.end_point)
