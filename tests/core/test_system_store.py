"""End-to-end tests for ViewMapSystem over configurable storage backends."""

import pytest

from repro.core.system import ViewMapSystem
from repro.core.vehicle import VehicleAgent
from repro.errors import ValidationError
from repro.geo.geometry import Point
from repro.store import SQLiteStore, make_store
from tests.conftest import run_linked_minute


def drive_minute():
    police = VehicleAgent(vehicle_id=100, seed=10)
    civilian = VehicleAgent(vehicle_id=1, seed=11)
    return run_linked_minute(police, civilian)


@pytest.mark.parametrize("kind", ["memory", "sqlite", "sharded"])
def test_investigation_over_any_backend(kind):
    system = ViewMapSystem(key_bits=512, seed=1, store=make_store(kind))
    res_police, res_civ = drive_minute()
    system.ingest_trusted_vp(res_police.actual_vp)
    system.ingest_vps([res_civ.actual_vp] + res_civ.guard_vps + res_police.guard_vps)
    inv = system.investigate(Point(300, 25), minute=0, site_radius_m=1000)
    assert res_civ.actual_vp.vp_id in inv.solicited


def test_store_and_database_together_rejected():
    from repro.core.database import VPDatabase

    with pytest.raises(ValidationError):
        ViewMapSystem(
            key_bits=512, store=make_store("memory"), database=VPDatabase()
        )


def test_batch_ingest_rejects_trusted_claims():
    system = ViewMapSystem(key_bits=512, seed=2)
    _, res_civ = drive_minute()
    res_civ.actual_vp.trusted = True
    with pytest.raises(ValidationError):
        system.ingest_vps([res_civ.actual_vp])


def test_batch_ingest_skips_duplicates():
    system = ViewMapSystem(key_bits=512, seed=3)
    _, res_civ = drive_minute()
    vps = [res_civ.actual_vp] + res_civ.guard_vps
    assert system.ingest_vps(vps) == len(vps)
    assert system.ingest_vps(vps) == 0


def test_sqlite_authority_survives_restart(tmp_path):
    path = str(tmp_path / "authority.sqlite")
    system = ViewMapSystem(key_bits=512, seed=4, store=SQLiteStore(path))
    res_police, res_civ = drive_minute()
    system.ingest_trusted_vp(res_police.actual_vp)
    system.ingest_vps([res_civ.actual_vp] + res_civ.guard_vps)
    stored = len(system.database)
    system.database.close()

    # a fresh authority process over the same database file
    reborn = ViewMapSystem(key_bits=512, seed=5, store=SQLiteStore(path))
    assert len(reborn.database) == stored
    inv = reborn.investigate(Point(300, 25), minute=0, site_radius_m=1000)
    assert res_civ.actual_vp.vp_id in inv.solicited
    reborn.database.close()
