"""Tests for the ViewMapSystem facade."""

import pytest

from repro.core.system import ViewMapSystem
from repro.core.vehicle import VehicleAgent
from repro.errors import ValidationError
from repro.geo.geometry import Point
from tests.conftest import run_linked_minute


@pytest.fixture
def populated_system():
    """System with a trusted VP linked to one anonymous VP."""
    system = ViewMapSystem(key_bits=512, seed=1)
    police = VehicleAgent(vehicle_id=100, seed=10)
    civilian = VehicleAgent(vehicle_id=1, seed=11)
    res_police, res_civ = run_linked_minute(police, civilian)
    system.ingest_trusted_vp(res_police.actual_vp)
    system.ingest_vp(res_civ.actual_vp)
    for guard in res_civ.guard_vps + res_police.guard_vps:
        system.ingest_vp(guard)
    return system, civilian, res_civ


class TestIngestion:
    def test_anonymous_cannot_claim_trusted(self):
        system = ViewMapSystem(key_bits=512, seed=2)
        agent = VehicleAgent(vehicle_id=1, seed=1)
        for i in range(60):
            agent.emit(i + 1.0, Point(float(i), 0), minute=0)
        vp = agent.finalize_minute().actual_vp
        vp.trusted = True
        with pytest.raises(ValidationError):
            system.ingest_vp(vp)


class TestInvestigation:
    def test_investigate_solicits_legit_vps(self, populated_system):
        system, _, res_civ = populated_system
        inv = system.investigate(Point(300, 25), minute=0, site_radius_m=1000)
        assert res_civ.actual_vp.vp_id in inv.solicited
        assert system.solicitations.is_requested(res_civ.actual_vp.vp_id)

    def test_investigate_without_trusted_raises(self):
        system = ViewMapSystem(key_bits=512, seed=3)
        with pytest.raises(ValidationError):
            system.investigate(Point(0, 0), minute=0)

    def test_investigation_result_structure(self, populated_system):
        system, _, _ = populated_system
        inv = system.investigate(Point(300, 25), minute=0, site_radius_m=1000)
        assert inv.minute == 0
        assert inv.viewmap.node_count >= 2
        assert inv.verification.top_site_vp is not None


class TestVideoFlow:
    def test_full_video_and_reward_flow(self, populated_system):
        system, civilian, res_civ = populated_system
        system.investigate(Point(300, 25), minute=0, site_radius_m=1000)
        vp_id = res_civ.actual_vp.vp_id
        assert system.receive_video(vp_id, res_civ.video.chunks)
        system.human_review(vp_id)
        assert vp_id in system.reviewed
        assert system.rewards.pending_ids() == [vp_id]

    def test_unsolicited_video_rejected(self, populated_system):
        system, _, res_civ = populated_system
        # no investigation ran: nothing solicited
        assert not system.receive_video(res_civ.actual_vp.vp_id, res_civ.video.chunks)

    def test_tampered_video_rejected(self, populated_system):
        system, _, res_civ = populated_system
        system.investigate(Point(300, 25), minute=0, site_radius_m=1000)
        tampered = list(res_civ.video.chunks)
        tampered[0] = b"forged"
        assert not system.receive_video(res_civ.actual_vp.vp_id, tampered)

    def test_review_requires_received_video(self, populated_system):
        system, _, res_civ = populated_system
        with pytest.raises(ValidationError):
            system.human_review(res_civ.actual_vp.vp_id)

    def test_guard_vp_solicitation_yields_no_video(self, populated_system):
        # guard VPs may be solicited, but no owner can produce the video:
        # vehicles deleted them and their hashes are random
        system, civilian, res_civ = populated_system
        inv = system.investigate(Point(300, 25), minute=0, site_radius_m=1000)
        guard_ids = [g.vp_id for g in res_civ.guard_vps if g.vp_id in inv.solicited]
        for guard_id in guard_ids:
            assert not system.receive_video(guard_id, res_civ.video.chunks)
