"""Tests for video solicitation and upload validation."""

import pytest

from repro.core.solicitation import (
    SolicitationBoard,
    SolicitationState,
    validate_video_upload,
)
from repro.errors import ValidationError


class TestBoard:
    def test_post_and_poll(self):
        board = SolicitationBoard()
        board.post(b"\x01" * 16)
        assert board.is_requested(b"\x01" * 16)
        assert board.requested_ids() == [b"\x01" * 16]

    def test_post_idempotent(self):
        board = SolicitationBoard()
        board.post(b"\x01" * 16)
        board.mark_received(b"\x01" * 16)
        board.post(b"\x01" * 16)  # re-post must not reset state
        assert board.state_of(b"\x01" * 16) == SolicitationState.RECEIVED

    def test_lifecycle(self):
        board = SolicitationBoard()
        vp_id = b"\x02" * 16
        board.post(vp_id)
        board.mark_received(vp_id)
        assert not board.is_requested(vp_id)
        board.mark_reviewed(vp_id)
        assert board.state_of(vp_id) == SolicitationState.REVIEWED

    def test_unknown_id_rejected(self):
        board = SolicitationBoard()
        with pytest.raises(ValidationError):
            board.mark_received(b"\x03" * 16)
        with pytest.raises(ValidationError):
            board.mark_reviewed(b"\x03" * 16)
        assert board.state_of(b"\x03" * 16) is None


class TestVideoValidation:
    def test_authentic_video_accepted(self, linked_pair):
        _, _, res_a, _ = linked_pair
        assert validate_video_upload(res_a.actual_vp, res_a.video.chunks)

    def test_other_vehicles_video_rejected(self, linked_pair):
        _, _, res_a, res_b = linked_pair
        assert not validate_video_upload(res_a.actual_vp, res_b.video.chunks)

    def test_single_edited_chunk_rejected(self, linked_pair):
        _, _, res_a, _ = linked_pair
        tampered = list(res_a.video.chunks)
        tampered[30] = b"edited frame"
        assert not validate_video_upload(res_a.actual_vp, tampered)

    def test_truncated_video_rejected(self, linked_pair):
        _, _, res_a, _ = linked_pair
        assert not validate_video_upload(res_a.actual_vp, res_a.video.chunks[:59])

    def test_guard_vp_can_never_validate(self, linked_pair):
        a, _, res_a, _ = linked_pair
        if not res_a.guard_vps:
            pytest.skip("no guard created this run")
        guard = res_a.guard_vps[0]
        # even replaying the creator's own chunks fails: hash fields random
        assert not validate_video_upload(guard, res_a.video.chunks)
