"""Tests for viewmap export and rendering."""

import json

from repro.core.export import render_ascii, save_viewmap, viewmap_to_dict
from repro.core.viewmap import ViewMapGraph, build_viewmap


class TestViewmapExport:
    def test_dict_structure(self, linked_pair):
        _, _, res_a, res_b = linked_pair
        vmap = build_viewmap([res_a.actual_vp, res_b.actual_vp], minute=0)
        data = viewmap_to_dict(vmap)
        assert data["minute"] == 0
        assert len(data["nodes"]) == 2
        assert len(data["edges"]) == 1
        assert data["stats"]["edges"] == 1

    def test_node_fields(self, linked_pair):
        _, _, res_a, res_b = linked_pair
        res_a.actual_vp.trusted = True
        vmap = build_viewmap([res_a.actual_vp, res_b.actual_vp], minute=0)
        data = viewmap_to_dict(vmap)
        trusted = [n for n in data["nodes"] if n["trusted"]]
        assert len(trusted) == 1
        assert trusted[0]["id"] == res_a.actual_vp.vp_id.hex()
        assert trusted[0]["degree"] == 1

    def test_save_roundtrips_as_json(self, linked_pair, tmp_path):
        _, _, res_a, res_b = linked_pair
        vmap = build_viewmap([res_a.actual_vp, res_b.actual_vp], minute=0)
        path = tmp_path / "viewmap.json"
        save_viewmap(vmap, path)
        loaded = json.loads(path.read_text())
        assert loaded == viewmap_to_dict(vmap)

    def test_ascii_render(self, linked_pair):
        _, _, res_a, res_b = linked_pair
        vmap = build_viewmap([res_a.actual_vp, res_b.actual_vp], minute=0)
        art = render_ascii(vmap, width=30, height=8)
        lines = art.splitlines()
        assert len(lines) == 8
        assert all(len(line) == 30 for line in lines)
        assert any(c != " " for line in lines for c in line)

    def test_empty_viewmap_render(self):
        assert "empty" in render_ascii(ViewMapGraph(minute=0))


class TestInvestigatePeriod:
    def test_multi_minute_investigation(self):
        from repro.core.system import ViewMapSystem
        from repro.core.vehicle import VehicleAgent
        from repro.geo.geometry import Point
        from tests.conftest import run_linked_minute

        system = ViewMapSystem(key_bits=512, seed=41)
        police = VehicleAgent(vehicle_id=100, seed=41)
        civ = VehicleAgent(vehicle_id=1, seed=42)
        for minute in (0, 1):
            res_pol, res_civ = run_linked_minute(police, civ, minute=minute)
            system.ingest_trusted_vp(res_pol.actual_vp)
            system.ingest_vp(res_civ.actual_vp)
        invs = system.investigate_period(
            Point(300, 25), minutes=[0, 1, 2], site_radius_m=1000
        )
        # minute 2 has no trusted VP and is skipped, not fatal
        assert [inv.minute for inv in invs] == [0, 1]
        for inv in invs:
            assert inv.solicited
