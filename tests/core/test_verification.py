"""Tests for TrustRank verification (Algorithm 1) and its bounds."""

import networkx as nx
import pytest

from repro.core.verification import (
    lemma1_bound,
    lemma2_bound,
    link_distances,
    trustrank,
    verify_site_members,
)
from repro.errors import ValidationError


def path_graph(n=6):
    g = nx.path_graph(n)
    return g


class TestTrustRank:
    def test_scores_sum_at_most_one(self):
        g = nx.erdos_renyi_graph(50, 0.1, seed=1)
        scores = trustrank(g, seeds=[0])
        assert 0.0 < sum(scores.values()) <= 1.0 + 1e-9

    def test_seed_region_has_highest_scores_on_path(self):
        # a degree-1 seed forwards all its mass to its only neighbour, so
        # nodes 0 and 1 tie at the top; beyond that scores must decay
        scores = trustrank(path_graph(), seeds=[0])
        top_two = sorted(scores, key=scores.get, reverse=True)[:2]
        assert set(top_two) == {0, 1}

    def test_scores_decay_with_distance(self):
        scores = trustrank(path_graph(8), seeds=[0])
        values = [scores[i] for i in range(1, 8)]
        assert values == sorted(values, reverse=True)

    def test_requires_seed(self):
        with pytest.raises(ValidationError):
            trustrank(path_graph(), seeds=[])

    def test_seed_must_be_member(self):
        with pytest.raises(ValidationError):
            trustrank(path_graph(), seeds=[99])

    def test_empty_graph(self):
        g = nx.Graph()
        g.add_node(0)
        scores = trustrank(g, seeds=[0])
        assert scores[0] == pytest.approx(1.0)

    def test_isolated_node_gets_no_trust(self):
        g = path_graph(4)
        g.add_node(99)
        scores = trustrank(g, seeds=[0])
        assert scores[99] == 0.0

    def test_multiple_seeds_share_static_mass(self):
        g = path_graph(6)
        scores = trustrank(g, seeds=[0, 5])
        assert scores[0] == pytest.approx(scores[5], rel=1e-6)

    def test_damping_zero_keeps_all_mass_on_seed(self):
        scores = trustrank(path_graph(), seeds=[0], damping=0.0)
        assert scores[0] == pytest.approx(1.0)
        assert scores[3] == pytest.approx(0.0)

    def test_symmetric_graph_symmetric_scores(self):
        g = nx.cycle_graph(8)
        scores = trustrank(g, seeds=[0])
        assert scores[1] == pytest.approx(scores[7], rel=1e-9)
        assert scores[2] == pytest.approx(scores[6], rel=1e-9)


class TestAlgorithm1:
    def test_top_site_vp_marked_legitimate(self):
        g = path_graph(6)
        result = verify_site_members(g, seeds=[0], site_members=[3, 4, 5])
        assert result.top_site_vp == 3
        assert result.is_legitimate(3)

    def test_legitimacy_floods_within_site(self):
        g = path_graph(6)
        result = verify_site_members(g, seeds=[0], site_members=[3, 4, 5])
        assert result.legitimate == {3, 4, 5}

    def test_flooding_stops_outside_site(self):
        # site = {3, 5}: node 5 is reachable from 3 only through 4 (not in
        # the site), so it must NOT be marked legitimate
        g = path_graph(6)
        result = verify_site_members(g, seeds=[0], site_members=[3, 5])
        assert result.legitimate == {3}

    def test_disconnected_fake_cluster_excluded(self):
        g = path_graph(4)
        g.add_edge(10, 11)  # a fake island claiming in-site locations
        result = verify_site_members(g, seeds=[0], site_members=[2, 3, 10, 11])
        assert result.legitimate == {2, 3}

    def test_empty_site(self):
        g = path_graph(4)
        result = verify_site_members(g, seeds=[0], site_members=[])
        assert result.top_site_vp is None
        assert result.legitimate == set()


class TestBounds:
    def test_lemma1_bound_values(self):
        assert lemma1_bound(0.8, 0) == 1.0
        assert lemma1_bound(0.8, 3) == pytest.approx(0.512)
        with pytest.raises(ValidationError):
            lemma1_bound(0.8, -1)

    def test_lemma1_holds_empirically(self):
        g = nx.random_geometric_graph(200, 0.15, seed=3)
        scores = trustrank(g, seeds=[0])
        dist = link_distances(g, [0])
        for distance in (1, 2, 3, 4):
            far_sum = sum(
                s for n, s in scores.items() if dist.get(n, 10**9) >= distance
            )
            assert far_sum <= lemma1_bound(0.8, distance) + 1e-9

    def test_lemma2_bounds_fake_scores(self):
        # attacker node 3 anchors a fake chain 10-11-12
        g = path_graph(4)
        g.add_edges_from([(3, 10), (10, 11), (11, 12)])
        scores = trustrank(g, seeds=[0])
        fakes = {10, 11, 12}
        bound = lemma2_bound(g, scores, attacker_nodes={3}, fake_nodes=fakes)
        fake_sum = sum(scores[f] for f in fakes)
        assert fake_sum <= bound + 1e-9

    def test_link_distances_bfs(self):
        g = path_graph(5)
        dist = link_distances(g, [0])
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_link_distances_multi_seed(self):
        g = path_graph(5)
        dist = link_distances(g, [0, 4])
        assert dist[2] == 2
        assert dist[1] == 1 and dist[3] == 1
