"""Tests for the VP database."""

import pytest

from repro.core.database import VPDatabase
from repro.errors import ValidationError
from repro.geo.geometry import Point, Rect
from tests.core.test_viewprofile import make_vp


class TestInsertQuery:
    def test_insert_and_get(self):
        db = VPDatabase()
        vp = make_vp(seed=1)
        db.insert(vp)
        assert len(db) == 1
        assert vp.vp_id in db
        assert db.get(vp.vp_id) is vp

    def test_duplicate_rejected(self):
        db = VPDatabase()
        vp = make_vp(seed=1)
        db.insert(vp)
        with pytest.raises(ValidationError):
            db.insert(vp)

    def test_by_minute(self):
        db = VPDatabase()
        db.insert(make_vp(seed=1))
        db.insert(make_vp(seed=2))
        assert len(db.by_minute(0)) == 2
        assert db.by_minute(5) == []
        assert db.minutes() == [0]

    def test_by_minute_in_area(self):
        db = VPDatabase()
        near = make_vp(seed=1, x0=0.0)
        far = make_vp(seed=2, x0=10_000.0)
        db.insert(near)
        db.insert(far)
        area = Rect(-100, -100, 1000, 100)
        found = db.by_minute_in_area(0, area)
        assert found == [near]


class TestTrusted:
    def test_trusted_flag_set_on_authority_path(self):
        db = VPDatabase()
        vp = make_vp(seed=3)
        db.insert_trusted(vp)
        assert vp.trusted
        assert db.trusted_by_minute(0) == [vp]

    def test_anonymous_vps_not_trusted(self):
        db = VPDatabase()
        db.insert(make_vp(seed=4))
        assert db.trusted_by_minute(0) == []

    def test_nearest_trusted_ordering(self):
        db = VPDatabase()
        near = make_vp(seed=5, x0=0.0)
        far = make_vp(seed=6, x0=5_000.0)
        db.insert_trusted(far)
        db.insert_trusted(near)
        best = db.nearest_trusted(0, Point(0, 0), k=1)
        assert best == [near]
        both = db.nearest_trusted(0, Point(0, 0), k=2)
        assert both == [near, far]
