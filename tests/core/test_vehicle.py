"""Tests for the vehicle agent."""

import pytest

from repro.core.vehicle import VehicleAgent, make_default_chunk_fn
from repro.core.viewdigest import VDGenerator, make_secret
from repro.errors import ValidationError
from repro.geo.geometry import Point
from tests.conftest import run_linked_minute


class TestEmit:
    def test_emit_starts_recording(self):
        agent = VehicleAgent(vehicle_id=1, seed=1)
        assert not agent.recording
        agent.emit(1.0, Point(0, 0), minute=0)
        assert agent.recording
        assert agent.current_vp_id is not None

    def test_finalize_without_recording_raises(self):
        agent = VehicleAgent(vehicle_id=1, seed=1)
        with pytest.raises(ValidationError):
            agent.finalize_minute()

    def test_default_chunks_differ_per_vehicle(self):
        fn1 = make_default_chunk_fn(1)
        fn2 = make_default_chunk_fn(2)
        assert fn1(0, 1) != fn2(0, 1)
        assert fn1(0, 1) == fn1(0, 1)


class TestReceive:
    def test_rejects_own_echo(self):
        agent = VehicleAgent(vehicle_id=1, seed=1)
        vd = agent.emit(1.0, Point(0, 0), minute=0)
        assert not agent.receive(vd, 1.0, Point(0, 0))

    def test_rejects_out_of_range(self):
        a = VehicleAgent(vehicle_id=1, seed=1)
        b = VehicleAgent(vehicle_id=2, seed=2)
        vd = a.emit(1.0, Point(0, 0), minute=0)
        b.emit(1.0, Point(800, 0), minute=0)
        assert not b.receive(vd, 1.0, Point(800, 0))

    def test_rejects_stale_time(self):
        a = VehicleAgent(vehicle_id=1, seed=1)
        b = VehicleAgent(vehicle_id=2, seed=2)
        vd = a.emit(1.0, Point(0, 0), minute=0)
        assert not b.receive(vd, 10.0, Point(50, 0))

    def test_accepts_valid_neighbor(self):
        a = VehicleAgent(vehicle_id=1, seed=1)
        b = VehicleAgent(vehicle_id=2, seed=2)
        vd = a.emit(1.0, Point(0, 0), minute=0)
        assert b.receive(vd, 1.0, Point(50, 0))
        assert len(b.neighbors) == 1


class TestFinalize:
    def test_minute_result_contents(self, linked_pair):
        _, _, res_a, res_b = linked_pair
        assert len(res_a.actual_vp.digests) == 60
        assert res_a.neighbor_count == 1
        assert res_a.video.vp_id == res_a.actual_vp.vp_id
        assert len(res_a.video.chunks) == 60

    def test_state_cleared_after_finalize(self, linked_pair):
        a, _, _, _ = linked_pair
        assert not a.recording
        assert len(a.neighbors) == 0

    def test_video_archived(self, linked_pair):
        a, _, res_a, _ = linked_pair
        assert a.video_for(res_a.actual_vp.vp_id) is res_a.video
        assert a.video_for(b"\x00" * 16) is None

    def test_consecutive_minutes_have_distinct_ids(self):
        a = VehicleAgent(vehicle_id=1, seed=1)
        b = VehicleAgent(vehicle_id=2, seed=2)
        res0, _ = run_linked_minute(a, b, minute=0)
        res1, _ = run_linked_minute(a, b, minute=1)
        assert res0.actual_vp.vp_id != res1.actual_vp.vp_id
        assert res1.actual_vp.minute == 1

    def test_empty_minute_rejected(self):
        agent = VehicleAgent(vehicle_id=1, seed=1)
        agent._generator = VDGenerator(make_secret(1))
        with pytest.raises(ValidationError):
            agent.finalize_minute()


class TestRunMinute:
    def test_run_minute_convenience(self):
        agent = VehicleAgent(vehicle_id=5, seed=5)
        positions = [Point(float(i), 0) for i in range(60)]
        res = agent.run_minute(0.0, positions, minute=0)
        assert len(res.actual_vp.digests) == 60
        assert res.neighbor_count == 0

    def test_run_minute_with_incoming(self):
        src = VehicleAgent(vehicle_id=6, seed=6)
        vds = {}
        for i in range(60):
            vds[i] = [src.emit(i + 1.0, Point(float(i), 10.0), minute=0)]
        agent = VehicleAgent(vehicle_id=7, seed=7)
        positions = [Point(float(i), 0) for i in range(60)]
        res = agent.run_minute(0.0, positions, incoming=vds, minute=0)
        assert res.neighbor_count == 1

    def test_wrong_position_count_rejected(self):
        agent = VehicleAgent(vehicle_id=8, seed=8)
        with pytest.raises(ValidationError):
            agent.run_minute(0.0, [Point(0, 0)] * 59)
