"""Tests for view profiles."""

import pytest

from repro.constants import VP_STORAGE_BYTES
from repro.core.neighbors import NeighborTable
from repro.core.viewdigest import VDGenerator, make_secret
from repro.core.viewprofile import ViewProfile, build_view_profile
from repro.errors import ValidationError
from repro.geo.geometry import Point


def make_vp(seed=1, n=60, neighbors=None, x0=0.0):
    gen = VDGenerator(make_secret(seed))
    for i in range(n):
        gen.tick(float(i + 1), Point(x0 + 10.0 * i, 0), b"chunk")
    table = NeighborTable()
    for record_vds in neighbors or []:
        for vd in record_vds:
            table.accept(vd)
    return build_view_profile(gen.digests, table)


class TestConstruction:
    def test_empty_digests_rejected(self):
        from repro.crypto.bloom import BloomFilter

        with pytest.raises(ValidationError):
            ViewProfile(digests=[], bloom=BloomFilter())

    def test_mixed_ids_rejected(self):
        from repro.crypto.bloom import BloomFilter

        a = make_vp(seed=1, n=2)
        b = make_vp(seed=2, n=2)
        with pytest.raises(ValidationError):
            ViewProfile(digests=[a.digests[0], b.digests[1]], bloom=BloomFilter())

    def test_non_increasing_indices_rejected(self):
        from repro.crypto.bloom import BloomFilter

        vp = make_vp(seed=3, n=3)
        with pytest.raises(ValidationError):
            ViewProfile(digests=[vp.digests[1], vp.digests[0]], bloom=BloomFilter())


class TestProperties:
    def test_vp_id_consistent(self):
        vp = make_vp(seed=4)
        assert vp.vp_id == vp.digests[0].vp_id
        assert vp.vp_id_hex == vp.vp_id.hex()

    def test_minute_from_first_digest(self):
        vp = make_vp(seed=5)
        assert vp.minute == 0

    def test_trajectory_and_endpoints(self):
        vp = make_vp(seed=6)
        assert vp.start_point == vp.trajectory.start_point
        assert vp.end_point.x == pytest.approx(590.0)
        assert len(vp.trajectory) == 60

    def test_positions_array_shape(self):
        vp = make_vp(seed=7)
        assert vp.positions_array.shape == (60, 2)
        assert vp.times_array.shape == (60,)

    def test_claims_location_near(self):
        vp = make_vp(seed=8)
        assert vp.claims_location_near(Point(300, 0), 50.0)
        assert not vp.claims_location_near(Point(300, 500), 50.0)

    def test_storage_bytes_matches_paper(self):
        # Section 6.1: 60*72 + 256 + 8 = 4584 bytes
        assert ViewProfile.storage_bytes() == VP_STORAGE_BYTES == 4584
        assert ViewProfile.storage_bytes(include_secret=False) == 4576


class TestLinkage:
    def test_neighbor_vds_in_bloom(self):
        neighbor = make_vp(seed=9, n=10)
        record_vds = [neighbor.digests[0], neighbor.digests[-1]]
        vp = make_vp(seed=10, n=10, neighbors=[record_vds])
        assert vp.may_link_to(neighbor)

    def test_stranger_not_in_bloom(self):
        vp = make_vp(seed=11, n=10)
        stranger = make_vp(seed=12, n=10)
        assert not vp.may_link_to(stranger)

    def test_one_way_is_not_mutual(self):
        from repro.core.viewmap import mutual_linkage

        neighbor = make_vp(seed=13, n=10)
        vp = make_vp(seed=14, n=10, neighbors=[[neighbor.digests[0]]])
        assert vp.may_link_to(neighbor)
        assert not mutual_linkage(vp, neighbor)
