"""Tests for guard VP creation."""

import pytest

from repro.core.guard import (
    GuardVPFactory,
    guard_coverage_probability,
    straight_route,
)
from repro.core.viewmap import mutual_linkage
from tests.conftest import run_linked_minute
from repro.core.vehicle import VehicleAgent


@pytest.fixture
def minute_with_guards():
    a = VehicleAgent(vehicle_id=1, seed=1, alpha=1.0)  # guard for every neighbour
    b = VehicleAgent(vehicle_id=2, seed=2, alpha=1.0)
    res_a, res_b = run_linked_minute(a, b)
    return res_a, res_b


class TestGuardCreation:
    def test_pick_count(self):
        factory = GuardVPFactory.with_seed(1, alpha=0.1)
        assert factory.pick_count(0) == 0
        assert factory.pick_count(1) == 1     # ceil(0.1)
        assert factory.pick_count(10) == 1
        assert factory.pick_count(11) == 2

    def test_guard_count_matches_alpha(self, minute_with_guards):
        res_a, _ = minute_with_guards
        assert len(res_a.guard_vps) == 1  # one neighbour, alpha=1

    def test_guard_trajectory_endpoints(self, minute_with_guards):
        res_a, res_b = minute_with_guards
        guard = res_a.guard_vps[0]
        # starts at the neighbour's minute-start position...
        assert guard.start_point.distance_to(res_b.actual_vp.start_point) < 1.0
        # ...and ends at the creator's own final position
        assert guard.end_point.distance_to(res_a.actual_vp.end_point) < 1.0

    def test_guard_has_full_minute_of_digests(self, minute_with_guards):
        res_a, _ = minute_with_guards
        guard = res_a.guard_vps[0]
        assert len(guard.digests) == 60
        assert guard.minute == res_a.actual_vp.minute

    def test_guard_mutually_linked_with_actual(self, minute_with_guards):
        res_a, _ = minute_with_guards
        guard = res_a.guard_vps[0]
        assert mutual_linkage(guard, res_a.actual_vp)

    def test_guard_has_fresh_identity(self, minute_with_guards):
        res_a, res_b = minute_with_guards
        guard = res_a.guard_vps[0]
        assert guard.vp_id != res_a.actual_vp.vp_id
        assert guard.vp_id != res_b.actual_vp.vp_id

    def test_guard_file_sizes_plausible_and_increasing(self, minute_with_guards):
        res_a, _ = minute_with_guards
        sizes = [vd.file_size for vd in res_a.guard_vps[0].digests]
        assert sizes == sorted(sizes)
        assert 30_000_000 < sizes[-1] < 80_000_000  # ~50 MB per minute

    def test_guard_vd_spacing_is_variable(self, minute_with_guards):
        res_a, _ = minute_with_guards
        pts = res_a.guard_vps[0].positions_array
        import numpy as np

        steps = np.linalg.norm(np.diff(pts, axis=0), axis=1)
        moving = steps[steps > 1e-9]
        assert moving.std() > 0.0  # not perfectly even spacing

    def test_no_neighbors_no_guards(self):
        agent = VehicleAgent(vehicle_id=9, seed=9, alpha=1.0)
        from repro.geo.geometry import Point

        for i in range(60):
            agent.emit(i + 1.0, Point(float(i), 0), minute=0)
        res = agent.finalize_minute()
        assert res.guard_vps == []


class TestCoverageProbability:
    def test_formula_monotone_in_time(self):
        values = [guard_coverage_probability(0.1, 50, t) for t in (1, 3, 5, 10)]
        assert values == sorted(values, reverse=True)

    def test_paper_design_point(self):
        # alpha=0.1 pushes P_t below 0.01 within 5 minutes (dense traffic)
        assert guard_coverage_probability(0.1, 50, 5) < 0.01

    def test_larger_alpha_better_coverage(self):
        weak = guard_coverage_probability(0.05, 30, 5)
        strong = guard_coverage_probability(0.5, 30, 5)
        assert strong < weak

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            guard_coverage_probability(0.0, 10, 5)
        with pytest.raises(ValueError):
            guard_coverage_probability(1.5, 10, 5)

    def test_no_neighbors_never_covered(self):
        assert guard_coverage_probability(0.1, 0, 5) == 1.0


class TestStraightRoute:
    def test_fallback_route(self):
        from repro.geo.geometry import Point

        route = straight_route(Point(0, 0), Point(10, 10))
        assert route == [Point(0, 0), Point(10, 10)]
