"""Tests for the neighbour table."""

from repro.core.neighbors import NeighborTable
from repro.core.viewdigest import VDGenerator, make_secret
from repro.geo.geometry import Point


def digest_stream(seed, n=5):
    gen = VDGenerator(make_secret(seed))
    return [gen.tick(float(i + 1), Point(float(i), 0), b"c") for i in range(n)]


class TestNeighborTable:
    def test_first_and_last_kept(self):
        table = NeighborTable()
        vds = digest_stream(1, n=5)
        for vd in vds:
            table.accept(vd)
        record = table.get(vds[0].vp_id)
        assert record.first == vds[0]
        assert record.last == vds[-1]
        assert record.digests() == [vds[0], vds[-1]]

    def test_single_vd_record(self):
        table = NeighborTable()
        vd = digest_stream(2, n=1)[0]
        table.accept(vd)
        record = table.get(vd.vp_id)
        assert record.digests() == [vd]

    def test_contact_seconds(self):
        table = NeighborTable()
        for vd in digest_stream(3, n=10):
            table.accept(vd)
        record = table.records()[0]
        assert record.contact_seconds == 9.0

    def test_multiple_neighbors_tracked(self):
        table = NeighborTable()
        for seed in (1, 2, 3):
            for vd in digest_stream(seed, n=2):
                table.accept(vd)
        assert len(table) == 3

    def test_cap_rejects_overflow(self):
        table = NeighborTable(max_neighbors=2)
        for seed in (1, 2, 3, 4):
            accepted = table.accept(digest_stream(seed, n=1)[0])
            if seed <= 2:
                assert accepted
            else:
                assert not accepted
        assert len(table) == 2
        assert table.rejected_over_cap == 2

    def test_cap_does_not_block_known_neighbors(self):
        table = NeighborTable(max_neighbors=1)
        vds = digest_stream(5, n=3)
        for vd in vds:
            assert table.accept(vd)

    def test_initial_location_exposed(self):
        table = NeighborTable()
        vd = digest_stream(6, n=1)[0]
        table.accept(vd)
        assert table.records()[0].initial_location == vd.initial_location

    def test_clear_resets(self):
        table = NeighborTable(max_neighbors=1)
        table.accept(digest_stream(7, n=1)[0])
        table.accept(digest_stream(8, n=1)[0])  # rejected
        table.clear()
        assert len(table) == 0
        assert table.rejected_over_cap == 0
