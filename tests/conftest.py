"""Shared fixtures: linked vehicle minutes, small road grids, key pairs."""

from __future__ import annotations

import pytest

from repro.core.vehicle import VehicleAgent
from repro.crypto.rsa import RSAKeyPair
from repro.geo.geometry import Point
from repro.geo.roadnet import grid_city


def run_linked_minute(
    agent_a: VehicleAgent,
    agent_b: VehicleAgent,
    minute: int = 0,
    lateral_gap: float = 50.0,
    deliver: bool = True,
):
    """Drive two agents through one minute with mutual VD reception."""
    base = minute * 60
    for i in range(60):
        t = base + i + 1.0
        pa = Point(10.0 * i, 0.0)
        pb = Point(10.0 * i, lateral_gap)
        vda = agent_a.emit(t, pa, minute=minute)
        vdb = agent_b.emit(t, pb, minute=minute)
        if deliver:
            agent_b.receive(vda, t, pb)
            agent_a.receive(vdb, t, pa)
    return agent_a.finalize_minute(), agent_b.finalize_minute()


@pytest.fixture
def linked_pair():
    """Two agents that completed one mutually-linked minute."""
    a = VehicleAgent(vehicle_id=1, seed=11)
    b = VehicleAgent(vehicle_id=2, seed=22)
    res_a, res_b = run_linked_minute(a, b)
    return a, b, res_a, res_b


@pytest.fixture
def unlinked_pair():
    """Two agents that recorded simultaneously but never heard each other."""
    a = VehicleAgent(vehicle_id=3, seed=33)
    b = VehicleAgent(vehicle_id=4, seed=44)
    res_a, res_b = run_linked_minute(a, b, deliver=False)
    return a, b, res_a, res_b


@pytest.fixture
def small_grid():
    """A 1 km x 1 km Manhattan grid with 200 m blocks."""
    return grid_city(1000.0, 1000.0, block_m=200.0)


@pytest.fixture(scope="session")
def rsa_keypair():
    """A session-cached 512-bit RSA key pair (tests only)."""
    return RSAKeyPair.generate(bits=512, rng=42)
