"""Legacy setup shim.

The reproduction environment is offline and has no ``wheel`` package, so
PEP 660 editable installs are unavailable; this shim lets
``pip install -e .`` fall back to the classic setuptools develop path.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
